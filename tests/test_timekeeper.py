"""Timing model: operation latencies, resource contention, parallelism."""

import pytest

from repro.flash.timekeeper import FlashTimekeeper
from repro.flash.timing import TimingParams


@pytest.fixture
def clock(small_geometry, timing):
    return FlashTimekeeper(small_geometry, timing)


XFER = 0.2 + 256 * 0.025  # cmd/addr + 256-byte page transfer


def test_read_latency_when_idle(clock):
    end = clock.read_page(0, 0.0)
    assert end == pytest.approx(25.0 + XFER)
    assert clock.counters.reads == 1


def test_program_latency_when_idle(clock):
    end = clock.program_page(0, 0.0)
    assert end == pytest.approx(XFER + 200.0)
    assert clock.counters.programs == 1


def test_erase_latency_when_idle(clock):
    end = clock.erase_block(0, 0.0)
    assert end == pytest.approx(0.2 + 2000.0)
    assert clock.counters.erases == 1


def test_copy_back_latency_and_no_channel_use(clock):
    end = clock.copy_back(0, 0.0)
    assert end == pytest.approx(225.0)
    # the channel is untouched: a transfer on the same channel starts at 0
    channel = clock.geometry.plane_to_channel(0)
    assert clock.channel_free[channel] == 0.0
    assert clock.counters.copybacks == 1


def test_inter_plane_copy_latency(clock):
    """Fig. 2: read + out-transfer + in-transfer + program."""
    src, dst = 0, 1  # distinct planes, distinct channels in small geometry
    end = clock.inter_plane_copy(src, dst, 0.0)
    assert end == pytest.approx(25.0 + XFER + XFER + 200.0)
    assert clock.counters.interplane_copies == 1


def test_copy_back_saves_about_30_percent(paper_geometry, timing):
    """The ~30% figure holds for the paper's 2 KB pages (Section III.A)."""
    clock = FlashTimekeeper(paper_geometry, timing)
    cb = clock.copy_back(0, 0.0)
    clock2 = FlashTimekeeper(paper_geometry, timing)
    ip = clock2.inter_plane_copy(0, 1, 0.0)
    saving = (ip - cb) / ip
    assert 0.25 < saving < 0.35  # paper: "can be 30% faster"


def test_same_plane_operations_serialize(clock):
    first = clock.program_page(0, 0.0)
    second = clock.program_page(0, 0.0)
    assert second > first


def test_different_planes_same_channel_share_bus_only(clock):
    geom = clock.geometry
    # planes 0 and 2 share channel 0 in the 2-channel small geometry
    assert geom.plane_to_channel(0) == geom.plane_to_channel(2)
    end0 = clock.program_page(0, 0.0)
    end2 = clock.program_page(2, 0.0)
    # second write waits only for the bus transfer, then programs in parallel
    assert end2 == pytest.approx(end0 + XFER)


def test_different_channels_fully_parallel(clock):
    geom = clock.geometry
    assert geom.plane_to_channel(0) != geom.plane_to_channel(1)
    end0 = clock.program_page(0, 0.0)
    end1 = clock.program_page(1, 0.0)
    assert end1 == pytest.approx(end0)


def test_concurrent_copy_backs_overlap_fully(clock):
    """Fig. 3: multiple copy-backs on different planes at once."""
    ends = [clock.copy_back(p, 0.0) for p in range(clock.geometry.num_planes)]
    assert all(end == pytest.approx(225.0) for end in ends)


def test_copy_back_does_not_block_other_planes_bus(clock):
    clock.copy_back(0, 0.0)
    # a read on plane 2 (same channel as plane 0) is not delayed
    end = clock.read_page(2, 0.0)
    assert end == pytest.approx(25.0 + XFER)


def test_plane_request_counters(clock):
    clock.read_page(1, 0.0)
    clock.program_page(1, 0.0)
    clock.copy_back(1, 0.0)
    clock.erase_block(1, 0.0)
    assert clock.counters.plane_ops[1] == 4
    assert clock.counters.plane_ops[0] == 0


def test_inter_plane_copy_counts_read_and_program(clock):
    clock.inter_plane_copy(0, 1, 0.0)
    assert clock.counters.reads == 1
    assert clock.counters.programs == 1
    assert clock.counters.plane_ops[0] == 1
    assert clock.counters.plane_ops[1] == 1


def test_reset_measurements_zeros_everything(clock):
    clock.program_page(0, 0.0)
    clock.reset_measurements()
    assert max(clock.plane_free) == 0.0
    assert max(clock.channel_free) == 0.0
    assert clock.counters.programs == 0
    assert sum(clock.counters.plane_ops) == 0


def test_quiesce_time(clock):
    assert clock.quiesce_time() == 0.0
    end = clock.program_page(3, 10.0)
    assert clock.quiesce_time() == pytest.approx(end)


def test_start_time_respected(clock):
    end = clock.read_page(0, 1000.0)
    assert end == pytest.approx(1000.0 + 25.0 + XFER)


def test_custom_timing_parameters(small_geometry):
    timing = TimingParams(page_read_us=10, page_program_us=100, bus_per_byte_us=0.0, cmd_addr_us=0.0)
    clock = FlashTimekeeper(small_geometry, timing)
    assert clock.copy_back(0, 0.0) == pytest.approx(110.0)
    assert clock.program_page(1, 0.0) == pytest.approx(100.0)


# ---- die-aware fidelity (chip serial bus, Fig. 1b) ----------------------------


def multi_chip_geometry():
    from repro.flash.geometry import SSDGeometry

    # 1 channel shared by 2 chips x 1 die x 2 planes = 4 planes, 2 dies
    return SSDGeometry(
        channels=1,
        packages_per_channel=1,
        chips_per_package=2,
        dies_per_chip=1,
        planes_per_die=2,
        blocks_per_plane=8,
        pages_per_block=8,
        page_size=256,
        extra_blocks_percent=25.0,
    )


def test_die_aware_noop_for_single_chip(small_geometry, timing):
    simple = FlashTimekeeper(small_geometry, timing)
    aware = FlashTimekeeper(small_geometry, timing, die_aware=True)
    for plane in (0, 1, 0, 2, 3):
        assert simple.program_page(plane, 0.0) == pytest.approx(
            aware.program_page(plane, 0.0)
        )


def test_die_aware_serialises_same_die_transfers(timing):
    geom = multi_chip_geometry()
    clock = FlashTimekeeper(geom, timing, die_aware=True)
    die0_planes = list(geom.planes_of_die(0))
    end0 = clock.program_page(die0_planes[0], 0.0)
    end1 = clock.program_page(die0_planes[1], 0.0)
    # same die: second transfer waits for the die bus, programs overlap
    assert end1 > 0
    xfer = timing.page_transfer_us(geom.page_size)
    assert end1 == pytest.approx(end0 + xfer)


def test_die_bus_separate_from_channel(timing):
    """Same channel, different dies: the shared channel still serialises
    transfers, so die-awareness adds no extra delay there."""
    geom = multi_chip_geometry()
    aware = FlashTimekeeper(geom, timing, die_aware=True)
    simple = FlashTimekeeper(geom, timing)
    d0 = list(geom.planes_of_die(0))[0]
    d1 = list(geom.planes_of_die(1))[0]
    assert aware.program_page(d0, 0.0) == pytest.approx(simple.program_page(d0, 0.0))
    assert aware.program_page(d1, 0.0) == pytest.approx(simple.program_page(d1, 0.0))


def test_die_aware_reset(timing):
    geom = multi_chip_geometry()
    clock = FlashTimekeeper(geom, timing, die_aware=True)
    clock.program_page(0, 0.0)
    clock.reset_measurements()
    assert max(clock.die_bus_free) == 0.0
