"""Latency histogram, throughput windows, amplification, ASCII charts."""

import numpy as np
import pytest

from repro.metrics.amplification import AmplificationReport
from repro.metrics.ascii_chart import hbar_chart, series_chart, sparkline
from repro.metrics.latency import LatencyHistogram, windowed_throughput


# ---- histogram ---------------------------------------------------------------


def test_histogram_counts_and_mean():
    h = LatencyHistogram()
    for v in (10, 100, 1000):
        h.record(v)
    assert h.total == 3
    assert h.mean_us == pytest.approx(370.0)
    assert h.max_seen == 1000


def test_histogram_percentile_accuracy():
    h = LatencyHistogram(min_us=1, max_us=1e6, buckets_per_decade=20)
    rng = np.random.default_rng(0)
    samples = rng.lognormal(mean=5, sigma=1, size=20000)
    h.record_many(samples)
    for q in (50, 95, 99):
        exact = float(np.percentile(samples, q))
        approx = h.percentile(q)
        assert approx == pytest.approx(exact, rel=0.15)


def test_histogram_clamps_out_of_range():
    h = LatencyHistogram(min_us=10, max_us=1000)
    h.record(1)      # below range -> first bucket
    h.record(99999)  # above range -> last bucket
    assert h.total == 2
    assert h.counts[0] == 1
    assert h.counts[-1] == 1


def test_histogram_summary_keys():
    h = LatencyHistogram()
    h.record(50)
    summary = h.summary()
    assert set(summary) == {"count", "mean_us", "p50_us", "p95_us", "p99_us", "max_us"}


def test_histogram_validation():
    with pytest.raises(ValueError):
        LatencyHistogram(min_us=0)
    with pytest.raises(ValueError):
        LatencyHistogram(min_us=10, max_us=5)
    h = LatencyHistogram()
    with pytest.raises(ValueError):
        h.record(-1)
    with pytest.raises(ValueError):
        h.percentile(0)


def test_empty_histogram():
    h = LatencyHistogram()
    assert h.mean_us == 0.0
    assert h.percentile(99) == 0.0


# ---- throughput ---------------------------------------------------------------


def test_windowed_throughput_buckets():
    arrivals = [0, 0.2e6, 0.9e6, 1.1e6, 2.5e6]
    points = windowed_throughput(arrivals, window_us=1e6)
    assert [p.requests for p in points] == [3, 1, 1]
    assert points[0].requests_per_s == 3.0


def test_windowed_throughput_empty():
    assert windowed_throughput([]) == []


def test_windowed_throughput_validation():
    with pytest.raises(ValueError):
        windowed_throughput([1.0], window_us=0)


# ---- amplification ---------------------------------------------------------------


def test_write_amplification_counts_copybacks_and_waste():
    report = AmplificationReport(
        host_pages_written=100,
        host_pages_read=50,
        flash_programs=120,
        flash_reads=80,
        copybacks=30,
        skipped_pages=10,
    )
    assert report.write_amplification == pytest.approx(1.6)
    assert report.read_amplification == pytest.approx(1.6)
    row = report.row()
    assert row["WA"] == 1.6


def test_amplification_zero_host_io():
    report = AmplificationReport(0, 0, 10, 10, 0, 0)
    assert report.write_amplification == 0.0
    assert report.read_amplification == 0.0


def test_amplification_from_simulation(small_geometry, timing):
    from repro.controller.device import SimulatedSSD
    from repro.metrics.amplification import amplification
    from repro.sim.request import IoOp, IoRequest
    import random

    ssd = SimulatedSSD(small_geometry, timing, ftl="dloop")
    ssd.precondition(0.7)
    rng = random.Random(61)
    reqs = [
        IoRequest(float(i * 50), rng.randrange(int(small_geometry.num_lpns * 0.6)), 1, IoOp.WRITE)
        for i in range(2000)
    ]
    ssd.run(reqs)
    report = amplification(ssd.stats, ssd.counters)
    assert report.host_pages_written == 2000
    assert report.write_amplification >= 1.0  # every host write programs at least once


# ---- ascii charts ---------------------------------------------------------------------


def test_hbar_chart_renders_all_labels():
    chart = hbar_chart({"dloop": 1.0, "dftl": 2.0, "fast": 8.0}, width=10, unit=" ms")
    lines = chart.splitlines()
    assert len(lines) == 3
    assert "dloop" in lines[0] and "8 ms" in lines[2]
    # the largest value has the longest bar
    assert lines[2].count("█") > lines[0].count("█")


def test_hbar_chart_empty_and_invalid():
    assert hbar_chart({}) == "(no data)"
    with pytest.raises(ValueError):
        hbar_chart({"x": -1})


def test_sparkline_shape():
    line = sparkline([1, 2, 3, 4, 5])
    assert len(line) == 5
    assert line[0] == "▁" and line[-1] == "█"
    assert sparkline([]) == ""
    assert sparkline([3, 3, 3]) == "▁▁▁"


def test_series_chart_includes_ranges():
    chart = series_chart({"dloop": [1, 2], "fast": [10, 5]}, x_labels=[2, 8], title="demo")
    assert "demo" in chart
    assert "[1 .. 2]" in chart
    assert "[5 .. 10]" in chart
