"""Hot-plane-aware DLOOP (the paper's Section VI future work)."""

import random

import pytest

from repro.core.hotdloop import HotPlaneDloopFtl


@pytest.fixture
def ftl(small_geometry, timing):
    return HotPlaneDloopFtl(
        small_geometry, timing, cmt_entries=64, rebalance_period=200
    )


def test_total_overprovisioning_budget_conserved(ftl):
    """Parked + active extras always equal the uniform budget."""
    geom = ftl.geometry
    rng = random.Random(21)
    hot = [lpn for lpn in range(0, geom.num_lpns, geom.num_planes)][:20]  # plane 0 only
    for i in range(1000):
        ftl.write_page(rng.choice(hot), float(i))
    parked = ftl.parked_counts()
    assert parked.sum() >= 0
    # no plane parks below the safety margin
    for plane in range(ftl.num_planes):
        assert ftl.array.free_block_count(plane) >= 1


def test_hot_plane_keeps_more_extras(ftl):
    """A plane receiving all writes should end up parking the least."""
    geom = ftl.geometry
    rng = random.Random(22)
    hot_plane = 2
    hot = [lpn for lpn in range(hot_plane, geom.num_lpns, geom.num_planes)][:20]
    for i in range(1500):
        ftl.write_page(rng.choice(hot), float(i))
    parked = ftl.parked_counts()
    assert parked[hot_plane] == parked.min()
    assert ftl.rebalances > 0


def test_rebalance_decays_history(ftl):
    geom = ftl.geometry
    rng = random.Random(23)
    for i in range(500):
        ftl.write_page(rng.randrange(int(geom.num_lpns * 0.7)), float(i))
    heat_after = ftl._write_heat.sum()
    total_writes = ftl.stats.host_writes
    assert heat_after < total_writes  # halving applied at rebalances


def test_integrity_with_rebalancing(ftl):
    rng = random.Random(24)
    for i in range(2500):
        ftl.write_page(rng.randrange(int(ftl.geometry.num_lpns * 0.7)), float(i))
    ftl.verify_integrity()


def test_parked_blocks_stay_out_of_allocation(ftl):
    rng = random.Random(25)
    for i in range(1500):
        ftl.write_page(rng.randrange(int(ftl.geometry.num_lpns * 0.7)), float(i))
    for plane, parked in enumerate(ftl._parked):
        for block in parked:
            assert not ftl.array.is_block_free(block)
            assert ftl.array.block_write_ptr[block] == 0  # never written


def test_invalid_reserved_fraction(small_geometry, timing):
    with pytest.raises(ValueError):
        HotPlaneDloopFtl(small_geometry, timing, reserved_fraction=1.5)
