"""Trace generators, statistics, parsers, Zipf sampler."""

import io

import numpy as np
import pytest

from repro.traces.model import KB, SizeMix, TraceRequest, WorkloadSpec
from repro.traces.synthetic import PAPER_TRACE_NAMES
from repro.traces.parser import parse_disksim, parse_spc, write_disksim, write_spc
from repro.traces.stats import measure
from repro.traces.synthetic import generate, make_workload, named_workloads
from repro.traces.zipf import ZipfSampler

MB = 1024 * KB


def small_spec(**overrides):
    base = dict(
        name="test",
        num_requests=2000,
        write_fraction=0.6,
        request_rate_per_s=1000.0,
        size_mix=SizeMix.fixed(4 * KB),
        footprint_bytes=8 * MB,
        seed=1,
    )
    base.update(overrides)
    return WorkloadSpec(**base)


def test_generator_is_deterministic():
    a = generate(small_spec())
    b = generate(small_spec())
    assert a == b


def test_different_seeds_differ():
    a = generate(small_spec(seed=1))
    b = generate(small_spec(seed=2))
    assert a != b


def test_write_fraction_matches_spec():
    trace = generate(small_spec(write_fraction=0.7))
    writes = sum(1 for r in trace if r.is_write)
    assert writes / len(trace) == pytest.approx(0.7, abs=0.05)


def test_arrival_rate_matches_spec():
    spec = small_spec(request_rate_per_s=500.0)
    trace = generate(spec)
    stats = measure("t", trace)
    assert stats.rate_per_s == pytest.approx(500.0, rel=0.1)


def test_arrivals_monotone():
    trace = generate(small_spec())
    arrivals = [r.arrival_us for r in trace]
    assert arrivals == sorted(arrivals)


def test_offsets_within_footprint():
    spec = small_spec()
    for r in generate(spec):
        assert 0 <= r.offset_bytes
        assert r.end_bytes <= spec.footprint_bytes


def test_size_mixture_mean():
    mix = SizeMix((2 * KB, 4 * KB), (0.5, 0.5))
    assert mix.mean_bytes == 3 * KB
    trace = generate(small_spec(size_mix=mix))
    mean = np.mean([r.size_bytes for r in trace])
    assert mean == pytest.approx(3 * KB, rel=0.05)


def test_sequential_fraction_produces_runs():
    seq = generate(small_spec(sequential_fraction=0.9))
    rand = generate(small_spec(sequential_fraction=0.0))

    def seq_count(trace):
        return sum(1 for a, b in zip(trace, trace[1:]) if b.offset_bytes == a.end_bytes)

    assert seq_count(seq) > seq_count(rand) + 100


def test_zipf_concentrates_accesses():
    hot = generate(small_spec(zipf_theta=1.2))
    cold = generate(small_spec(zipf_theta=0.0))

    def top_chunk_share(trace, chunk=64 * KB):
        chunks = [r.offset_bytes // chunk for r in trace]
        _, counts = np.unique(chunks, return_counts=True)
        return counts.max() / len(trace)

    assert top_chunk_share(hot) > top_chunk_share(cold)


def test_all_five_paper_workloads_build():
    specs = named_workloads(num_requests=500, footprint_bytes=8 * MB)
    assert set(specs) == set(PAPER_TRACE_NAMES)
    for name, spec in specs.items():
        trace = generate(spec)
        assert len(trace) == 500
        stats = measure(name, trace)
        assert stats.num_writes + stats.num_reads == 500


def test_table2_fingerprints():
    """Generated traces match the Table II write%% / size calibration."""
    expected = {
        "financial1": (63, 3.0),
        "financial2": (18, 2.0),
        "tpcc": (61, 8.0),
        "exchange": (46, 12.0),
        "build": (84, 8.0),
    }
    for name, (write_pct, size_kb) in expected.items():
        spec = make_workload(name, num_requests=4000, footprint_bytes=32 * MB)
        stats = measure(name, generate(spec))
        assert stats.write_percent == pytest.approx(write_pct, abs=3)
        assert stats.mean_size_kb == pytest.approx(size_kb, rel=0.1)


def test_make_workload_unknown():
    with pytest.raises(ValueError):
        make_workload("bogus")


def test_disksim_round_trip():
    trace = generate(small_spec(num_requests=100))
    buf = io.StringIO()
    write_disksim(trace, buf)
    parsed = parse_disksim(io.StringIO(buf.getvalue()))
    assert len(parsed) == 100
    for orig, back in zip(trace, parsed):
        assert back.is_write == orig.is_write
        assert back.offset_bytes // 512 == orig.offset_bytes // 512
        assert back.arrival_us == pytest.approx(orig.arrival_us, abs=1e-3)


def test_spc_round_trip():
    trace = generate(small_spec(num_requests=100))
    buf = io.StringIO()
    write_spc(trace, buf)
    parsed = parse_spc(io.StringIO(buf.getvalue()))
    assert len(parsed) == 100
    for orig, back in zip(trace, parsed):
        assert back.is_write == orig.is_write
        assert back.size_bytes == orig.size_bytes


def test_disksim_parse_flags():
    line = "1.5 0 100 8 1\n"  # flags bit0 = read
    [req] = parse_disksim([line])
    assert not req.is_write
    assert req.offset_bytes == 100 * 512
    assert req.size_bytes == 8 * 512
    assert req.arrival_us == 1500.0


def test_spc_parse_opcode_case():
    [r] = parse_spc(["0,10,4096,W,0.5\n"])
    assert r.is_write
    [r] = parse_spc(["0,10,4096,r,0.5\n"])
    assert not r.is_write


def test_parsers_skip_comments_and_blank_lines():
    lines = ["# header\n", "\n", "1.0 0 0 1 0\n"]
    assert len(parse_disksim(lines)) == 1


def test_parser_bad_lines_raise():
    with pytest.raises(ValueError):
        parse_disksim(["1.0 0 0\n"])
    with pytest.raises(ValueError):
        parse_spc(["0,1,2\n"])
    with pytest.raises(ValueError):
        parse_spc(["0,10,4096,x,0.5\n"])


def test_zipf_pmf_is_decreasing():
    rng = np.random.default_rng(0)
    z = ZipfSampler(100, 1.0, rng)
    pmf = z.pmf()
    assert np.all(np.diff(pmf) <= 1e-12)
    assert pmf.sum() == pytest.approx(1.0)


def test_zipf_theta_zero_is_uniform():
    rng = np.random.default_rng(0)
    z = ZipfSampler(50, 0.0, rng)
    pmf = z.pmf()
    assert np.allclose(pmf, 1.0 / 50)


def test_zipf_samples_in_range():
    rng = np.random.default_rng(0)
    z = ZipfSampler(10, 0.9, rng)
    samples = z.sample(1000)
    assert samples.min() >= 0
    assert samples.max() < 10


def test_zipf_rank_zero_is_hottest():
    rng = np.random.default_rng(0)
    z = ZipfSampler(20, 1.0, rng)
    samples = z.sample(20000)
    counts = np.bincount(samples, minlength=20)
    assert counts[0] == counts.max()


def test_workload_spec_validation():
    with pytest.raises(ValueError):
        small_spec(write_fraction=1.5)
    with pytest.raises(ValueError):
        small_spec(request_rate_per_s=0)
    with pytest.raises(ValueError):
        small_spec(num_requests=0)
    with pytest.raises(ValueError):
        small_spec(footprint_bytes=16)  # smaller than one chunk


def test_trace_request_validation():
    with pytest.raises(ValueError):
        TraceRequest(0.0, 0, 0, True)
    with pytest.raises(ValueError):
        TraceRequest(-1.0, 0, 1, True)
    with pytest.raises(ValueError):
        TraceRequest(0.0, -1, 1, True)


def test_extra_archetypes_build_and_fit_character():
    """The non-paper archetypes match their documented fingerprints."""
    from repro.traces.analysis import characterize
    from repro.traces.synthetic import EXTRA_TRACE_NAMES

    footprint = 32 * MB
    expectations = {
        "webserver": dict(write_max=0.10, seq_min=0.0),
        "streaming": dict(write_max=0.05, seq_min=0.7),
        "bootstorm": dict(write_max=0.20, seq_min=0.0),
    }
    for name in EXTRA_TRACE_NAMES:
        spec = make_workload(name, num_requests=2000, footprint_bytes=footprint)
        trace = generate(spec)
        assert len(trace) == 2000
        c = characterize(trace)
        rules = expectations[name]
        assert c.write_fraction <= rules["write_max"]
        assert c.sequential_fraction >= rules["seq_min"]


def test_extra_archetypes_replay():
    """The archetypes replay end-to-end (streaming's 64 KB requests need
    a device larger than the tiny unit-test fixture)."""
    from repro.controller.device import SimulatedSSD
    from repro.experiments.config import scaled_geometry
    from repro.sim.request import IoOp
    from repro.traces.synthetic import EXTRA_TRACE_NAMES

    geometry = scaled_geometry(2, scale=1 / 64)  # 32 MB, 2 KB pages
    for name in EXTRA_TRACE_NAMES:
        spec = make_workload(name, num_requests=300,
                             footprint_bytes=geometry.capacity_bytes // 2)
        ssd = SimulatedSSD(geometry, ftl="dloop")
        for r in generate(spec):
            op = IoOp.WRITE if r.is_write else IoOp.READ
            ssd.submit(ssd.byte_request(r.arrival_us, r.offset_bytes, r.size_bytes, op))
        ssd.run()
        ssd.verify()
