"""Parallel sweep execution."""

import pytest

from repro.experiments.config import ExperimentConfig, scaled_geometry
from repro.experiments.parallel import SweepCell, grid, run_cells
from repro.traces.model import KB, SizeMix, WorkloadSpec

TINY_SCALE = 1.0 / 256.0


def tiny_spec(name="par", seed=3):
    return WorkloadSpec(
        name=name,
        num_requests=200,
        write_fraction=0.6,
        request_rate_per_s=800.0,
        size_mix=SizeMix.fixed(2 * KB),
        footprint_bytes=4 * 1024 * 1024,
        seed=seed,
    )


def make_cells():
    geom = scaled_geometry(2, scale=TINY_SCALE)
    return [
        SweepCell(
            spec=tiny_spec(),
            config=ExperimentConfig(geometry=geom, ftl=ftl, precondition_fill=0.5),
            extras=(("ftl_tag", ftl),),
        )
        for ftl in ("dloop", "fast", "pagemap")
    ]


def test_serial_execution():
    results = run_cells(make_cells(), processes=1)
    assert [r.ftl for r in results] == ["dloop", "fast", "pagemap"]
    assert all(r.num_requests == 200 for r in results)
    assert results[0].extras["ftl_tag"] == "dloop"


def test_parallel_matches_serial():
    serial = run_cells(make_cells(), processes=1)
    parallel = run_cells(make_cells(), processes=2)
    for a, b in zip(serial, parallel):
        assert a.ftl == b.ftl
        assert a.mean_response_ms == pytest.approx(b.mean_response_ms)
        assert a.sdrpp == pytest.approx(b.sdrpp)
        assert a.gc_passes == b.gc_passes


def test_grid_builder():
    geom = scaled_geometry(2, scale=TINY_SCALE)
    specs = [tiny_spec("a"), tiny_spec("b")]
    configs = [ExperimentConfig(geometry=geom, ftl=f) for f in ("dloop", "fast")]
    cells = grid(specs, configs, extras_for={0: {"tag": "first"}})
    assert len(cells) == 4
    assert cells[0].tagged_extras() == {"tag": "first"}
    assert cells[1].tagged_extras() == {}
    assert cells[0].spec.name == "a" and cells[3].spec.name == "b"


def test_empty_cells():
    assert run_cells([], processes=2) == []
