"""TranslationManager: CMT-miss / dirty-eviction flash traffic."""

import pytest

from repro.flash.array import FlashArray
from repro.flash.timekeeper import FlashTimekeeper
from repro.ftl.allocator import PlaneAllocator
from repro.ftl.cmt import CachedMappingTable
from repro.ftl.gtd import GlobalTranslationDirectory
from repro.ftl.translation import TranslationManager


def make_tm(geometry, timing, cmt_entries=4, gc_mode="batched"):
    array = FlashArray(geometry)
    clock = FlashTimekeeper(geometry, timing)
    cmt = CachedMappingTable(cmt_entries)
    gtd = GlobalTranslationDirectory(geometry.num_lpns, geometry.page_size)
    allocators = [PlaneAllocator(p, array) for p in range(geometry.num_planes)]
    tm = TranslationManager(
        array=array,
        clock=clock,
        cmt=cmt,
        gtd=gtd,
        plane_of_tvpn=lambda tvpn: tvpn % geometry.num_planes,
        allocator_of_plane=lambda plane: allocators[plane],
        gc_hook=lambda plane, t: t,
    )
    tm.gc_mode = gc_mode
    return tm


def test_cold_lookup_costs_nothing_on_flash(small_geometry, timing):
    """Unmapped translation page: no flash read charged."""
    tm = make_tm(small_geometry, timing)
    t = tm.charge_lookup(0, 10.0)
    assert t == 10.0
    assert tm.stats.tpage_reads == 0
    assert 0 in tm.cmt


def test_hit_is_free(small_geometry, timing):
    tm = make_tm(small_geometry, timing)
    tm.charge_lookup(0, 0.0)
    t = tm.charge_lookup(0, 5.0)
    assert t == 5.0


def test_miss_on_mapped_tpage_costs_a_read(small_geometry, timing):
    tm = make_tm(small_geometry, timing)
    tvpn = tm.gtd.tvpn_of(0)
    tm.write_back(tvpn, 0.0)  # materialise the translation page
    tm.cmt.drop(0)
    t = tm.charge_lookup(0, 1000.0)
    assert t > 1000.0
    assert tm.stats.tpage_reads == 1


def test_dirty_eviction_writes_back(small_geometry, timing):
    tm = make_tm(small_geometry, timing, cmt_entries=2)
    tm.charge_update(0, 0.0)
    tm.charge_update(1, 0.0)
    writes_before = tm.stats.tpage_writes
    t = tm.charge_update(2, 0.0)  # evicts lpn 0 (dirty) -> write-back
    assert tm.stats.tpage_writes == writes_before + 1
    assert t > 0.0


def test_clean_eviction_is_free(small_geometry, timing):
    tm = make_tm(small_geometry, timing, cmt_entries=2)
    tm.charge_lookup(0, 0.0)
    tm.charge_lookup(1, 0.0)
    t = tm.charge_lookup(2, 0.0)  # evicts clean entry, tvpn 0 unmapped
    assert t == 0.0
    assert tm.stats.tpage_writes == 0


def test_write_back_invalidates_old_tpage(small_geometry, timing):
    tm = make_tm(small_geometry, timing)
    tm.write_back(0, 0.0)
    first = tm.gtd.lookup(0)
    tm.write_back(0, 1000.0)
    second = tm.gtd.lookup(0)
    assert first != second
    from repro.flash.address import PageState

    assert tm.array.state_of(first) == PageState.INVALID
    assert tm.array.state_of(second) == PageState.VALID


def test_write_back_lands_on_policy_plane(small_geometry, timing):
    tm = make_tm(small_geometry, timing)
    for tvpn in range(min(4, tm.gtd.num_tpages)):
        tm.write_back(tvpn, 0.0)
        plane = tm.array.codec.ppn_to_plane(tm.gtd.lookup(tvpn))
        assert plane == tvpn % small_geometry.num_planes


def test_gc_update_batched_groups_by_tpage(small_geometry, timing):
    tm = make_tm(small_geometry, timing, cmt_entries=2, gc_mode="batched")
    entries = tm.gtd.entries_per_tpage
    # two lpns in tpage 0, one in tpage 1, none cached
    moved = [(0, 100), (1, 101), (entries, 102)]
    tm.charge_lookup(3 * entries, 0.0)  # occupy CMT with an unrelated tpage's lpn
    before = tm.stats.tpage_writes
    tm.gc_update_mappings(moved, 0.0)
    assert tm.stats.tpage_writes == before + 2  # one RMW per distinct tvpn
    assert tm.stats.gc_batched_updates == 2


def test_gc_update_cached_entries_flip_dirty_free(small_geometry, timing):
    tm = make_tm(small_geometry, timing, gc_mode="batched")
    tm.charge_lookup(0, 0.0)
    before = tm.stats.tpage_writes
    t = tm.gc_update_mappings([(0, 55)], 7.0)
    assert t == 7.0
    assert tm.stats.tpage_writes == before
    assert tm.cmt.is_dirty(0)


def test_gc_update_free_mode_charges_nothing(small_geometry, timing):
    tm = make_tm(small_geometry, timing, gc_mode="free")
    t = tm.gc_update_mappings([(0, 100), (99, 101)], 3.0)
    assert t == 3.0
    assert tm.stats.tpage_writes == 0


def test_gc_update_cached_mode_inserts_dirty(small_geometry, timing):
    tm = make_tm(small_geometry, timing, cmt_entries=8, gc_mode="cached")
    tm.gc_update_mappings([(5, 100)], 0.0)
    assert 5 in tm.cmt
    assert tm.cmt.is_dirty(5)


def test_invalid_gc_mode_rejected(small_geometry, timing):
    with pytest.raises(ValueError):
        TranslationManager(
            array=None,
            clock=None,
            cmt=None,
            gtd=None,
            plane_of_tvpn=None,
            allocator_of_plane=None,
            gc_hook=None,
            gc_mode="bogus",
        )
