"""IoRequest model validation and derived properties."""

import pytest

from repro.sim.request import IoOp, IoRequest


def test_lpns_covers_the_request():
    r = IoRequest(0.0, 10, 4, IoOp.READ)
    assert list(r.lpns) == [10, 11, 12, 13]


def test_single_page_request():
    r = IoRequest(5.0, 0, 1, IoOp.WRITE)
    assert list(r.lpns) == [0]
    assert r.is_write


def test_response_time_requires_completion():
    r = IoRequest(10.0, 0, 1, IoOp.READ)
    with pytest.raises(RuntimeError):
        _ = r.response_us
    r.completion_us = 35.0
    assert r.response_us == 25.0


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(arrival_us=-1.0, start_lpn=0, page_count=1),
        dict(arrival_us=0.0, start_lpn=-5, page_count=1),
        dict(arrival_us=0.0, start_lpn=0, page_count=0),
    ],
)
def test_invalid_requests_rejected(kwargs):
    with pytest.raises(ValueError):
        IoRequest(op=IoOp.READ, **kwargs)


def test_is_write_flag():
    assert IoRequest(0.0, 0, 1, IoOp.WRITE).is_write
    assert not IoRequest(0.0, 0, 1, IoOp.READ).is_write
