"""Static wear leveler on top of the page-mapping FTLs."""

import random

import pytest

from repro.core.dloop import DloopFtl
from repro.ftl.fast import FastFtl
from repro.ftl.pagemap import PageMapFtl
from repro.ftl.wearlevel import StaticWearLeveler


def hammer(ftl, leveler, n=3000, seed=51, hot_planes=(0,)):
    """Concentrate updates on a few planes to skew wear."""
    rng = random.Random(seed)
    planes = ftl.geometry.num_planes
    hot_lpns = [
        lpn
        for lpn in range(int(ftl.geometry.num_lpns * 0.7))
        if lpn % planes in hot_planes
    ]
    t = 0.0
    for i in range(n):
        t = ftl.write_page(rng.choice(hot_lpns), float(i))
        t = leveler.maybe_level(t)
    return t


def test_rejects_hybrid_ftls(small_geometry, timing):
    with pytest.raises(TypeError):
        StaticWearLeveler(FastFtl(small_geometry, timing))


def test_parameter_validation(small_geometry, timing):
    ftl = PageMapFtl(small_geometry, timing)
    with pytest.raises(ValueError):
        StaticWearLeveler(ftl, gap_threshold=0)
    with pytest.raises(ValueError):
        StaticWearLeveler(ftl, check_interval_erases=0)


def test_no_migration_below_threshold(small_geometry, timing):
    ftl = PageMapFtl(small_geometry, timing)
    leveler = StaticWearLeveler(ftl, gap_threshold=10_000, check_interval_erases=1)
    hammer(ftl, leveler, n=1500)
    assert leveler.stats.migrations == 0


def test_migration_reduces_wear_gap(small_geometry, timing):
    """Skewed updates with leveling end with a tighter erase spread."""
    ftl_plain = PageMapFtl(small_geometry, timing)
    plain_leveler = StaticWearLeveler(ftl_plain, gap_threshold=10_000, check_interval_erases=1)
    hammer(ftl_plain, plain_leveler, n=4000)

    ftl_level = PageMapFtl(small_geometry, timing)
    leveler = StaticWearLeveler(ftl_level, gap_threshold=4, check_interval_erases=8)
    hammer(ftl_level, leveler, n=4000)

    assert leveler.stats.migrations > 0
    assert leveler.wear_gap() <= plain_leveler.wear_gap()
    ftl_level.verify_integrity()


def test_migrated_data_stays_reachable(small_geometry, timing):
    ftl = DloopFtl(small_geometry, timing, cmt_entries=64)
    leveler = StaticWearLeveler(ftl, gap_threshold=3, check_interval_erases=4)
    hammer(ftl, leveler, n=3000, hot_planes=(0, 1))
    assert leveler.stats.moved_pages > 0
    ftl.verify_integrity()


def test_check_interval_limits_scans(small_geometry, timing):
    ftl = PageMapFtl(small_geometry, timing)
    leveler = StaticWearLeveler(ftl, gap_threshold=1, check_interval_erases=10_000)
    hammer(ftl, leveler, n=1500)
    assert leveler.stats.checks <= 1


def test_leveling_advances_time(small_geometry, timing):
    ftl = PageMapFtl(small_geometry, timing)
    leveler = StaticWearLeveler(ftl, gap_threshold=2, check_interval_erases=2)
    end = hammer(ftl, leveler, n=3000)
    assert end > 0
    if leveler.stats.migrations:
        assert leveler.stats.moved_pages >= 0
