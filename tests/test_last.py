"""LAST hybrid FTL: sequential partition + hot/cold random buffer."""

import random

import pytest

from repro.ftl.last import LastFtl


@pytest.fixture
def ftl(small_geometry, timing):
    return LastFtl(small_geometry, timing, num_log_blocks=6, sequential_fraction=0.34)


def test_partition_capacities(ftl):
    assert ftl.seq_capacity == 2
    assert ftl.random_capacity == 4


def test_sequential_stream_switch_merges(ftl):
    ppb = ftl.pages_per_block
    for off in range(ppb):
        ftl.write_page(off, 0.0)
    # completing the stream switch-merges immediately
    assert ftl.last_stats.switch_merges == 1
    assert ftl.data_block[0] != -1
    assert 0 not in ftl.seq_logs


def test_two_concurrent_streams(ftl):
    ppb = ftl.pages_per_block
    for off in range(ppb):
        ftl.write_page(off, 0.0)            # stream A (lbn 0)
        ftl.write_page(ppb + off, 0.0)      # stream B (lbn 1)
    assert ftl.last_stats.switch_merges == 2  # FAST could only keep one


def test_incomplete_stream_partial_merges_on_eviction(ftl):
    ppb = ftl.pages_per_block
    ftl.write_page(0, 0.0)
    ftl.write_page(1, 0.0)             # lbn 0 stream, incomplete
    ftl.write_page(ppb, 0.0)           # lbn 1 stream
    ftl.write_page(2 * ppb, 0.0)       # lbn 2 stream: evicts lbn 0 (LRU)
    assert ftl.last_stats.partial_merges >= 1
    assert 0 not in ftl.seq_logs
    ftl.verify_integrity()


def test_hot_cold_separation(ftl):
    # hammer one page: it becomes hot; touch many others once: cold
    for i in range(12):
        ftl.write_page(1, float(i))
    assert ftl.last_stats.hot_writes > 0
    assert ftl.last_stats.cold_writes > 0


def test_dead_hot_blocks_reclaim_free(small_geometry, timing):
    """Pages rewritten within the window self-invalidate their log block."""
    ftl = LastFtl(small_geometry, timing, num_log_blocks=6, hot_window=64)
    hot_set = [1, 2, 3, 5]  # offsets != 0 -> random partition
    rng = random.Random(41)
    for i in range(1200):
        ftl.write_page(rng.choice(hot_set), float(i))
    assert ftl.last_stats.dead_block_reclaims > 0
    ftl.verify_integrity()


def test_random_budget_respected(ftl):
    rng = random.Random(42)
    for i in range(1500):
        ftl.write_page(rng.randrange(int(ftl.geometry.num_lpns * 0.7)), float(i))
    assert ftl.log_blocks_in_use() <= ftl.num_log_blocks
    assert ftl._random_blocks_in_use() <= ftl.random_capacity


def test_integrity_under_mixed_load(ftl):
    rng = random.Random(43)
    for i in range(3000):
        lpn = rng.randrange(int(ftl.geometry.num_lpns * 0.7))
        if rng.random() < 0.65:
            ftl.write_page(lpn, float(i))
        else:
            ftl.read_page(lpn, float(i))
    ftl.verify_integrity()


def test_stream_dissolved_by_full_merge_recovers(ftl):
    """A full merge hitting an active stream's lbn must not corrupt it."""
    ppb = ftl.pages_per_block
    rng = random.Random(44)
    # start a stream on lbn 0, then flood random writes to force merges
    ftl.write_page(0, 0.0)
    ftl.write_page(1, 0.0)
    for i in range(800):
        lpn = rng.randrange(ppb, int(ftl.geometry.num_lpns * 0.7))
        ftl.write_page(lpn, float(i))
    # close the (possibly dissolved) stream
    ftl.write_page(0, 999.0)
    ftl.verify_integrity()


def test_bulk_fill(ftl):
    count = int(ftl.geometry.num_lpns * 0.5)
    ftl.bulk_fill(count)
    assert len(ftl.mapped_lpns()) == count
    ftl.verify_integrity()


def test_parameter_validation(small_geometry, timing):
    with pytest.raises(ValueError):
        LastFtl(small_geometry, timing, num_log_blocks=3)
    with pytest.raises(ValueError):
        LastFtl(small_geometry, timing, sequential_fraction=0.0)


def test_map_journal_used(ftl):
    rng = random.Random(45)
    for i in range(800):
        ftl.write_page(rng.randrange(int(ftl.geometry.num_lpns * 0.6)), float(i))
    assert ftl.map_journal.map_writes > 0
