"""Workload characterisation metrics."""

import pytest

from repro.traces.analysis import characterize, compare_characters
from repro.traces.model import KB, SizeMix, TraceRequest, WorkloadSpec
from repro.traces.synthetic import generate

MB = 1024 * KB


def spec(**overrides):
    base = dict(
        name="t",
        num_requests=2000,
        write_fraction=0.6,
        request_rate_per_s=1000.0,
        size_mix=SizeMix.fixed(4 * KB),
        footprint_bytes=8 * MB,
        seed=2,
    )
    base.update(overrides)
    return WorkloadSpec(**base)


def test_write_fraction_measured():
    c = characterize(generate(spec(write_fraction=0.8)))
    assert c.write_fraction == pytest.approx(0.8, abs=0.05)


def test_footprint_bounded_by_spec():
    s = spec()
    c = characterize(generate(s))
    assert c.footprint_bytes <= s.footprint_bytes * 1.02
    assert c.footprint_bytes > s.footprint_bytes * 0.3  # most chunks touched


def test_sequentiality_reflects_spec():
    seq = characterize(generate(spec(sequential_fraction=0.8)))
    rnd = characterize(generate(spec(sequential_fraction=0.0)))
    assert seq.sequential_fraction > rnd.sequential_fraction + 0.3


def test_hot_share_reflects_zipf():
    hot = characterize(generate(spec(zipf_theta=1.2)))
    uniform = characterize(generate(spec(zipf_theta=0.0)))
    assert hot.hot10_share > uniform.hot10_share
    assert hot.hot1_share > uniform.hot1_share
    assert 0 < uniform.hot10_share <= 1


def test_update_distance_shrinks_with_locality():
    hot = characterize(generate(spec(zipf_theta=1.3)))
    uniform = characterize(generate(spec(zipf_theta=0.0)))
    assert hot.median_update_distance < uniform.median_update_distance


def test_poisson_burstiness_near_one():
    c = characterize(generate(spec()))
    assert c.burstiness_cv == pytest.approx(1.0, abs=0.15)


def test_read_only_trace_update_distance_inf():
    trace = [TraceRequest(float(i), i * 4096, 4096, False) for i in range(50)]
    c = characterize(trace)
    assert c.mean_update_distance == float("inf")
    assert c.write_fraction == 0.0


def test_empty_trace_rejected():
    with pytest.raises(ValueError):
        characterize([])


def test_bad_chunk_rejected():
    with pytest.raises(ValueError):
        characterize([TraceRequest(0.0, 0, 100, True)], chunk_bytes=0)


def test_compare_characters_rows():
    traces = {"a": generate(spec(seed=1)), "b": generate(spec(seed=2))}
    rows = compare_characters(traces)
    assert [r["trace"] for r in rows] == ["a", "b"]
    assert "hot10_%" in rows[0]


def test_row_is_table_friendly():
    row = characterize(generate(spec())).row()
    assert set(row) == {
        "requests", "footprint_MB", "write_%", "seq_%",
        "upd_dist_med", "hot10_%", "hot1_%", "burst_cv",
    }
