"""Cached Mapping Table: segmented-LRU semantics and dirty tracking."""

import pytest

from repro.ftl.cmt import CachedMappingTable


def test_insert_and_hit():
    cmt = CachedMappingTable(4)
    assert not cmt.touch(1)  # miss
    cmt.insert(1)
    assert cmt.touch(1)  # hit
    assert cmt.stats.hits == 1
    assert cmt.stats.misses == 1


def test_capacity_never_exceeded():
    cmt = CachedMappingTable(3)
    for lpn in range(10):
        if not cmt.touch(lpn):
            cmt.insert(lpn)
        assert len(cmt) <= 3


def test_eviction_is_lru_from_probation():
    cmt = CachedMappingTable(3)
    for lpn in (1, 2, 3):
        cmt.insert(lpn)
    victim = cmt.insert(4)
    assert victim == (1, False)
    assert 1 not in cmt


def test_hit_promotes_to_protected_and_survives_eviction():
    cmt = CachedMappingTable(3)
    for lpn in (1, 2, 3):
        cmt.insert(lpn)
    cmt.touch(1)  # promote 1 to the protected segment
    cmt.insert(4)  # evicts probationary LRU (2), not protected 1
    assert 1 in cmt
    assert 2 not in cmt


def test_protected_overflow_demotes():
    cmt = CachedMappingTable(4, protected_fraction=0.25)  # 1 protected slot
    for lpn in (1, 2, 3, 4):
        cmt.insert(lpn)
    cmt.touch(1)
    cmt.touch(2)  # 1 demoted back to probation MRU
    assert 1 in cmt and 2 in cmt
    assert len(cmt) == 4


def test_dirty_flag_round_trip():
    cmt = CachedMappingTable(4)
    cmt.insert(7, dirty=False)
    assert not cmt.is_dirty(7)
    cmt.mark_dirty(7)
    assert cmt.is_dirty(7)
    cmt.mark_clean(7)
    assert not cmt.is_dirty(7)


def test_dirty_survives_promotion():
    cmt = CachedMappingTable(4)
    cmt.insert(7, dirty=True)
    cmt.touch(7)  # promote
    assert cmt.is_dirty(7)


def test_eviction_reports_dirtiness():
    cmt = CachedMappingTable(1)
    cmt.insert(5, dirty=True)
    lpn, dirty = cmt.evict()
    assert (lpn, dirty) == (5, True)
    assert cmt.stats.dirty_evictions == 1


def test_evict_empty_raises():
    with pytest.raises(RuntimeError):
        CachedMappingTable(2).evict()


def test_double_insert_raises():
    cmt = CachedMappingTable(4)
    cmt.insert(1)
    with pytest.raises(KeyError):
        cmt.insert(1)


def test_mark_dirty_missing_raises():
    with pytest.raises(KeyError):
        CachedMappingTable(4).mark_dirty(9)


def test_hit_ratio():
    cmt = CachedMappingTable(4)
    cmt.insert(1)
    cmt.touch(1)
    cmt.touch(1)
    cmt.touch(2)  # miss
    assert cmt.stats.hit_ratio == pytest.approx(2 / 3)


def test_invalid_parameters():
    with pytest.raises(ValueError):
        CachedMappingTable(0)
    with pytest.raises(ValueError):
        CachedMappingTable(4, protected_fraction=1.0)


def test_drop_removes_without_stats():
    cmt = CachedMappingTable(4)
    cmt.insert(1)
    evictions = cmt.stats.evictions
    cmt.drop(1)
    assert 1 not in cmt
    assert cmt.stats.evictions == evictions


def test_cached_lpns_lists_all():
    cmt = CachedMappingTable(4)
    for lpn in (1, 2, 3):
        cmt.insert(lpn)
    cmt.touch(2)
    assert sorted(cmt.cached_lpns()) == [1, 2, 3]
