"""DFTL baseline: plane-0 translation store, roaming data block, GC."""

import random

import pytest

from repro.flash.address import PageState, is_translation_owner
from repro.ftl.dftl import TRANSLATION_PLANE, DftlFtl


@pytest.fixture
def ftl(small_geometry, timing):
    return DftlFtl(small_geometry, timing, cmt_entries=64)


def test_translation_pages_pinned_to_plane_zero(ftl):
    for tvpn in range(ftl.gtd.num_tpages):
        ftl.tm.write_back(tvpn, 0.0)
    for tvpn in range(ftl.gtd.num_tpages):
        plane = ftl.codec.ppn_to_plane(ftl.gtd.lookup(tvpn))
        assert plane == TRANSLATION_PLANE


def test_writes_fill_one_block_at_a_time(ftl):
    """Section V.B: DFTL picks free blocks to write sequentially."""
    ppb = ftl.geometry.pages_per_block
    blocks = set()
    for lpn in range(ppb):
        ftl.write_page(lpn, 0.0)
        blocks.add(ftl.codec.ppn_to_block(ftl.current_ppn(lpn)))
    assert len(blocks) == 1


def test_update_goes_to_global_active_block_not_home_plane(ftl):
    """Unlike DLOOP, updates follow the roaming block."""
    lpns = list(range(0, ftl.geometry.num_planes * 4, 4))
    for lpn in lpns:
        ftl.write_page(lpn, 0.0)
    # all writes landed in at most 2 blocks regardless of lpn
    blocks = {ftl.codec.ppn_to_block(ftl.current_ppn(lpn)) for lpn in lpns}
    assert len(blocks) <= 2


def test_read_after_write(ftl):
    ftl.write_page(11, 0.0)
    end = ftl.read_page(11, 500.0)
    assert end > 500.0


def test_update_invalidates_old(ftl):
    ftl.write_page(4, 0.0)
    old = ftl.current_ppn(4)
    ftl.write_page(4, 0.0)
    assert ftl.array.state_of(old) == PageState.INVALID


def test_gc_moves_through_controller(ftl):
    rng = random.Random(5)
    for i in range(3000):
        ftl.write_page(rng.randrange(int(ftl.geometry.num_lpns * 0.7)), float(i))
    assert ftl.gc_stats.moved_pages > 0
    assert ftl.gc_stats.copyback_moves == 0
    assert ftl.gc_stats.moved_pages <= ftl.gc_stats.controller_moves
    ftl.verify_integrity()


def test_gc_keeps_translation_pages_reachable(ftl):
    rng = random.Random(6)
    for i in range(3000):
        ftl.write_page(rng.randrange(int(ftl.geometry.num_lpns * 0.7)), float(i))
    # every valid translation page is the GTD's current pointer
    import numpy as np

    valid = np.flatnonzero(ftl.array.page_state_np == PageState.VALID)
    for ppn in valid:
        owner = ftl.array.owner_of(int(ppn))
        if is_translation_owner(owner):
            from repro.flash.address import decode_translation_owner

            assert ftl.gtd.lookup(decode_translation_owner(owner)) == ppn


def test_translation_traffic_concentrates_on_plane_zero(ftl):
    """The plane-0 contention the paper observes in Section V.D."""
    rng = random.Random(7)
    for i in range(1500):
        ftl.write_page(rng.randrange(int(ftl.geometry.num_lpns * 0.7)), float(i))
    counts = ftl.clock.counters.plane_ops
    assert counts[TRANSLATION_PLANE] == max(counts)


def test_integrity_after_mixed_workload(ftl):
    rng = random.Random(8)
    for i in range(2500):
        lpn = rng.randrange(int(ftl.geometry.num_lpns * 0.7))
        if rng.random() < 0.6:
            ftl.write_page(lpn, float(i))
        else:
            ftl.read_page(lpn, float(i))
    ftl.verify_integrity()
