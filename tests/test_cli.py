"""Command-line interface end-to-end."""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["simulate", "--ftl", "fast"])
    assert args.command == "simulate"
    assert args.ftl == "fast"


def test_simulate_prints_metrics(capsys):
    code = main([
        "simulate", "--ftl", "dloop", "--capacity-mb", "32",
        "--requests", "400", "--precondition", "0.5",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "mean response (ms)" in out
    assert "dloop on financial1" in out


def test_simulate_saves_json(tmp_path, capsys):
    out_file = str(tmp_path / "result.json")
    code = main([
        "simulate", "--ftl", "pagemap", "--capacity-mb", "32",
        "--requests", "300", "--precondition", "0", "--json", out_file,
    ])
    assert code == 0
    payload = json.loads(open(out_file).read())
    assert payload[0]["ftl"] == "pagemap"
    assert payload[0]["num_requests"] == 300


def test_tracegen_and_replay(tmp_path, capsys):
    trace_file = str(tmp_path / "trace.spc")
    code = main([
        "tracegen", "--workload", "tpcc", "--requests", "200",
        "--footprint-mb", "8", "--out", trace_file, "--format", "spc",
    ])
    assert code == 0
    assert "wrote 200 requests" in capsys.readouterr().out
    # replay the saved trace through simulate
    code = main([
        "simulate", "--ftl", "fast", "--capacity-mb", "32",
        "--replay", trace_file, "--precondition", "0.5",
    ])
    assert code == 0
    assert "fast on" in capsys.readouterr().out


def test_tracegen_disksim_format(tmp_path, capsys):
    trace_file = str(tmp_path / "trace.ds")
    main(["tracegen", "--workload", "build", "--requests", "50",
          "--footprint-mb", "8", "--out", trace_file, "--format", "disksim"])
    first = open(trace_file).readline().split()
    assert len(first) == 5  # DiskSim ASCII fields


def test_sweep_and_report(tmp_path, capsys):
    out_file = str(tmp_path / "sweep.json")
    code = main([
        "sweep", "--figure", "10", "--scale", str(1 / 256),
        "--requests", "200", "--traces", "financial1", "--out", out_file,
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Figure 10 sweep" in out
    code = main(["report", "--input", out_file])
    assert code == 0
    out = capsys.readouterr().out
    assert "results from" in out
    # sweep results carry an axis -> rendered as a sparkline figure
    assert "figure shape" in out
    assert "'winner': 'dloop'" in out


def test_sweep_csv_output(tmp_path, capsys):
    out_file = str(tmp_path / "sweep.csv")
    main([
        "sweep", "--figure", "9", "--scale", str(1 / 256),
        "--requests", "200", "--traces", "financial2", "--out", out_file,
    ])
    header = open(out_file).readline()
    assert "mean_response_ms" in header


def test_simulate_with_config_file(tmp_path, capsys):
    import json

    from repro.experiments.config import ExperimentConfig, config_to_dict, scaled_geometry

    config = ExperimentConfig(
        geometry=scaled_geometry(2, scale=1 / 256), ftl="fast", precondition_fill=0.5
    )
    path = str(tmp_path / "cfg.json")
    json.dump(config_to_dict(config), open(path, "w"))
    code = main(["simulate", "--config", path, "--requests", "200"])
    assert code == 0
    out = capsys.readouterr().out
    assert "fast on financial1" in out


def test_trace_stats_synthetic(capsys):
    code = main(["trace-stats", "--workload", "tpcc", "--requests", "500",
                 "--footprint-mb", "16"])
    assert code == 0
    out = capsys.readouterr().out
    assert "trace character: tpcc" in out
    assert "hot10_%" in out
    assert "Write(%)" in out


def test_trace_stats_from_file(tmp_path, capsys):
    trace_file = str(tmp_path / "t.spc")
    main(["tracegen", "--workload", "financial2", "--requests", "300",
          "--footprint-mb", "16", "--out", trace_file])
    capsys.readouterr()
    code = main(["trace-stats", "--trace", trace_file])
    assert code == 0
    out = capsys.readouterr().out
    assert "trace character" in out


def test_simulate_extra_archetype(capsys):
    code = main(["simulate", "--ftl", "pagemap", "--capacity-mb", "32",
                 "--workload", "webserver", "--requests", "300",
                 "--precondition", "0.4"])
    assert code == 0
    assert "pagemap on webserver" in capsys.readouterr().out


def test_simulate_closed_loop_mode(capsys):
    code = main(["simulate", "--ftl", "pagemap", "--capacity-mb", "32",
                 "--requests", "300", "--precondition", "0.4", "--iodepth", "8"])
    assert code == 0
    out = capsys.readouterr().out
    assert "closed-loop iodepth=8" in out
    assert "IOPS" in out


def test_report_without_sweep_axis(tmp_path, capsys):
    """Single-run results (no swept knob) render as a bar chart."""
    out_file = str(tmp_path / "single.json")
    main(["simulate", "--ftl", "pagemap", "--capacity-mb", "32",
          "--requests", "200", "--precondition", "0", "--json", out_file])
    capsys.readouterr()
    code = main(["report", "--input", out_file])
    assert code == 0
    out = capsys.readouterr().out
    assert "mean response time" in out  # hbar chart fallback
