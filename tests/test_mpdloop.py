"""Multi-plane DLOOP variant (advanced-command extension)."""

import random

import pytest

from repro.core.dloop import DloopFtl
from repro.core.mpdloop import MultiPlaneDloopFtl


@pytest.fixture
def ftl(small_geometry, timing):
    return MultiPlaneDloopFtl(small_geometry, timing, cmt_entries=64)


def test_single_page_write_uses_normal_path(ftl):
    ftl.write_pages([3], 0.0)
    assert ftl.multi_plane_batches == 0
    assert ftl.is_mapped(3)


def test_same_die_pages_batch(ftl):
    geom = ftl.geometry
    # find two lpns whose home planes share a die
    die_planes = list(geom.planes_of_die(0))
    lpns = [die_planes[0], die_planes[1]]  # lpn % planes == plane for small lpns
    ftl.write_pages(lpns, 0.0)
    assert ftl.multi_plane_batches == 1
    assert ftl.multi_plane_pages == 2
    for lpn in lpns:
        assert ftl.is_mapped(lpn)


def test_same_plane_pages_split_into_rounds(ftl):
    planes = ftl.geometry.num_planes
    lpns = [0, planes]  # both map to plane 0: cannot share one command
    ftl.write_pages(lpns, 0.0)
    assert ftl.multi_plane_batches == 0  # two single-page rounds
    assert ftl.is_mapped(0) and ftl.is_mapped(planes)


def test_placement_matches_plain_dloop(small_geometry, timing):
    plain = DloopFtl(small_geometry, timing, cmt_entries=64)
    multi = MultiPlaneDloopFtl(small_geometry, timing, cmt_entries=64)
    rng = random.Random(71)
    for i in range(300):
        start = rng.randrange(int(small_geometry.num_lpns * 0.6))
        count = min(rng.choice((1, 2, 4)), small_geometry.num_lpns - start)
        lpns = list(range(start, start + count))
        plain.write_pages(lpns, float(i))
        multi.write_pages(lpns, float(i))
    assert set(map(int, plain.mapped_lpns())) == set(map(int, multi.mapped_lpns()))
    for lpn in multi.mapped_lpns():
        assert multi.codec.ppn_to_plane(multi.current_ppn(int(lpn))) == int(lpn) % multi.num_planes
    multi.verify_integrity()


def test_batched_writes_not_slower(small_geometry, timing):
    """A same-die pair should finish no later than via two commands."""
    geom = small_geometry
    die_planes = list(geom.planes_of_die(0))
    lpns = [die_planes[0], die_planes[1]]
    plain = DloopFtl(geom, timing, cmt_entries=64)
    multi = MultiPlaneDloopFtl(geom, timing, cmt_entries=64)
    t_plain = plain.write_pages(list(lpns), 0.0)
    t_multi = multi.write_pages(list(lpns), 0.0)
    assert t_multi <= t_plain + 1e-9


def test_integrity_under_random_batches(ftl):
    rng = random.Random(72)
    for i in range(1500):
        start = rng.randrange(int(ftl.geometry.num_lpns * 0.6))
        count = min(rng.choice((1, 2, 4)), ftl.geometry.num_lpns - start)
        ftl.write_pages(range(start, start + count), float(i))
    ftl.verify_integrity()


def test_updates_invalidate_old_copies(ftl):
    lpns = list(ftl.geometry.planes_of_die(0))[:2]
    ftl.write_pages(list(lpns), 0.0)
    old = [ftl.current_ppn(lpn) for lpn in lpns]
    ftl.write_pages(list(lpns), 100.0)
    from repro.flash.address import PageState

    for ppn in old:
        assert ftl.array.state_of(ppn) == PageState.INVALID


def test_registry_name(small_geometry):
    from repro.ftl.registry import create_ftl

    ftl = create_ftl("dloop-mp", small_geometry)
    assert isinstance(ftl, MultiPlaneDloopFtl)
