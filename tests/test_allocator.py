"""Write-point allocators: sequential fill, parity handling, roaming."""

import pytest

from repro.flash.array import FlashArray, FlashStateError
from repro.ftl.allocator import PlaneAllocator, RoamingAllocator


@pytest.fixture
def array(small_geometry):
    return FlashArray(small_geometry)


def test_plane_allocator_fills_sequentially(array):
    alloc = PlaneAllocator(0, array)
    ppns = [alloc.allocate(i) for i in range(array.geometry.pages_per_block)]
    assert ppns == list(range(ppns[0], ppns[0] + len(ppns)))
    block = array.codec.ppn_to_block(ppns[0])
    assert all(array.codec.ppn_to_block(p) == block for p in ppns)


def test_plane_allocator_opens_new_block_when_full(array):
    alloc = PlaneAllocator(0, array)
    ppb = array.geometry.pages_per_block
    first_block_ppns = [alloc.allocate(i) for i in range(ppb)]
    next_ppn = alloc.allocate(ppb)
    assert array.codec.ppn_to_block(next_ppn) != array.codec.ppn_to_block(first_block_ppns[0])


def test_plane_allocator_stays_on_its_plane(array):
    for plane in range(array.geometry.num_planes):
        alloc = PlaneAllocator(plane, array)
        for i in range(20):
            ppn = alloc.allocate(i)
            assert array.codec.ppn_to_plane(ppn) == plane


def test_allocate_programs_owner(array):
    alloc = PlaneAllocator(1, array)
    ppn = alloc.allocate(99)
    assert array.owner_of(ppn) == 99


def test_parity_match_no_skip(array):
    alloc = PlaneAllocator(0, array)
    ppn, skipped = alloc.allocate_with_parity(1, parity=0)
    assert skipped == 0
    assert array.codec.page_parity(ppn) == 0


def test_parity_mismatch_skips_one_page(array):
    alloc = PlaneAllocator(0, array)
    ppn, skipped = alloc.allocate_with_parity(1, parity=1)  # offset 0 is even
    assert skipped == 1
    assert array.codec.page_parity(ppn) == 1
    # the skipped page is unusable and invalid
    assert array.block_invalid[array.codec.ppn_to_block(ppn)] == 1


def test_parity_sequence_alternates_freely(array):
    alloc = PlaneAllocator(0, array)
    _, s0 = alloc.allocate_with_parity(1, 0)
    _, s1 = alloc.allocate_with_parity(2, 1)
    _, s2 = alloc.allocate_with_parity(3, 0)
    assert (s0, s1, s2) == (0, 0, 0)


def test_parity_skip_at_block_boundary(array):
    """Wrong parity on the last page wastes it and opens a new block."""
    alloc = PlaneAllocator(0, array)
    ppb = array.geometry.pages_per_block
    for i in range(ppb - 1):
        alloc.allocate(i)
    # only the last (odd-parity) page remains; an even-parity source
    # forces a skip into a new block
    ppn, skipped = alloc.allocate_with_parity(100, parity=0)
    assert skipped == 1
    assert array.codec.page_parity(ppn) == 0
    assert array.codec.ppn_to_page(ppn) == 0  # first page of the new block


def test_parity_invalid_value(array):
    alloc = PlaneAllocator(0, array)
    with pytest.raises(ValueError):
        alloc.allocate_with_parity(1, parity=2)


def test_next_offset_reflects_pointer(array):
    alloc = PlaneAllocator(0, array)
    assert alloc.next_offset() == 0
    alloc.allocate(1)
    assert alloc.next_offset() == 1


def test_active_blocks_excludes_none_initially(array):
    alloc = PlaneAllocator(0, array)
    assert alloc.active_blocks() == set()
    alloc.allocate(1)
    assert alloc.active_blocks() == {alloc.current_block}


def test_pool_exhaustion_raises(array):
    alloc = PlaneAllocator(0, array)
    total_pages = array.geometry.physical_blocks_per_plane * array.geometry.pages_per_block
    for i in range(total_pages):
        alloc.allocate(i)
    with pytest.raises(FlashStateError):
        alloc.allocate(total_pages)


def test_roaming_allocator_spreads_over_planes(array):
    alloc = RoamingAllocator(array)
    ppb = array.geometry.pages_per_block
    planes_used = set()
    # consume several blocks; pool-depth-driven choice spreads over planes
    for i in range(ppb * array.geometry.num_planes):
        ppn = alloc.allocate(i)
        planes_used.add(array.codec.ppn_to_plane(ppn))
    assert len(planes_used) == array.geometry.num_planes


def test_roaming_allocator_one_block_at_a_time(array):
    alloc = RoamingAllocator(array)
    ppb = array.geometry.pages_per_block
    blocks = {array.codec.ppn_to_block(alloc.allocate(i)) for i in range(ppb)}
    assert len(blocks) == 1  # a whole block fills before roaming


def test_roaming_peek_plane_matches_next_allocation(array):
    alloc = RoamingAllocator(array)
    plane = alloc.peek_plane()
    ppn = alloc.allocate(0)
    assert array.codec.ppn_to_plane(ppn) == plane
