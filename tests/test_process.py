"""Process-style simulation layer (generators over the engine)."""

import pytest

from repro.sim.process import Environment, Timeout


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def worker(env):
        yield env.timeout(10.0)
        log.append(env.now)
        yield env.timeout(5.0)
        log.append(env.now)

    env.process(worker(env))
    env.run()
    assert log == [10.0, 15.0]


def test_event_wakes_waiter_with_value():
    env = Environment()
    received = []

    def waiter(env, event):
        value = yield event
        received.append((env.now, value))

    event = env.event()
    env.process(waiter(env, event))
    env.schedule(25.0, event.succeed, "payload")
    env.run()
    assert received == [(25.0, "payload")]


def test_event_wakes_multiple_waiters():
    env = Environment()
    woken = []

    def waiter(env, event, tag):
        yield event
        woken.append(tag)

    event = env.event()
    for tag in "abc":
        env.process(waiter(env, event, tag))
    env.schedule(5.0, event.succeed)
    env.run()
    assert sorted(woken) == ["a", "b", "c"]


def test_yield_on_already_triggered_event():
    env = Environment()
    seen = []

    def late(env, event):
        yield env.timeout(50.0)
        value = yield event  # already fired at t=1
        seen.append(value)

    event = env.event()
    env.schedule(1.0, event.succeed, 42)
    env.process(late(env, event))
    env.run()
    assert seen == [42]


def test_join_on_child_process():
    env = Environment()
    order = []

    def child(env):
        yield env.timeout(30.0)
        order.append("child")
        return "result"

    def parent(env):
        value = yield env.process(child(env))
        order.append(("parent", value, env.now))

    env.process(parent(env))
    env.run()
    assert order == ["child", ("parent", "result", 30.0)]


def test_double_succeed_raises():
    env = Environment()
    event = env.event()
    event.succeed()
    with pytest.raises(RuntimeError):
        event.succeed()


def test_negative_timeout_rejected():
    with pytest.raises(ValueError):
        Timeout(-1.0)


def test_bad_yield_type_raises():
    env = Environment()

    def bad(env):
        yield "nonsense"

    env.process(bad(env))
    with pytest.raises(TypeError):
        env.run()


def test_process_return_value():
    env = Environment()

    def worker(env):
        yield env.timeout(1.0)
        return 99

    process = env.process(worker(env))
    env.run()
    assert process.finished
    assert process.result == 99


def test_producer_consumer():
    """Classic two-process handshake over events."""
    env = Environment()
    produced, consumed = [], []

    def producer(env, slots):
        for i in range(3):
            yield env.timeout(10.0)
            produced.append(i)
            slots[i].succeed(i)

    def consumer(env, slots):
        for slot in slots:
            value = yield slot
            consumed.append((value, env.now))

    slots = [env.event() for _ in range(3)]
    env.process(producer(env, slots))
    env.process(consumer(env, slots))
    env.run()
    assert produced == [0, 1, 2]
    assert [v for v, _ in consumed] == [0, 1, 2]
    assert [t for _, t in consumed] == [10.0, 20.0, 30.0]


def test_shares_engine_with_device():
    """Processes coexist with a SimulatedSSD on one engine."""
    from repro.controller.device import SimulatedSSD
    from repro.flash.geometry import SSDGeometry
    from repro.sim.request import IoOp, IoRequest

    geom = SSDGeometry(
        channels=2, packages_per_channel=1, chips_per_package=1, dies_per_chip=1,
        planes_per_die=2, blocks_per_plane=8, pages_per_block=8, page_size=256,
        extra_blocks_percent=25.0,
    )
    ssd = SimulatedSSD(geom, ftl="pagemap")
    env = Environment(ssd.engine)
    pokes = []

    def monitor(env):
        for _ in range(3):
            yield env.timeout(1000.0)
            pokes.append((env.now, ssd.stats.count))

    env.process(monitor(env))
    ssd.run([IoRequest(float(i * 10), i, 1, IoOp.WRITE) for i in range(8)])
    assert len(pokes) == 3
    assert pokes[-1][1] == 8
