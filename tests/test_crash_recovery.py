"""Power-loss recovery (`SimulatedSSD.crash()`).

A crash throws away everything volatile — queued engine events, the
DRAM write buffer, mapping caches, allocator cursors — and rebuilds
the logical-to-physical mapping from on-flash OOB owner metadata (plus
the MapJournal for hybrid FTLs).  The contracts tested here:

* the recovered page table equals the pre-crash table (flash is
  non-volatile; only buffered/in-flight data may be lost);
* the device keeps serving IO after recovery;
* the whole crash/recover/resume procedure is deterministic — two
  fresh devices driven identically produce identical fingerprints;
* the sanitizer's shadow model stays coherent across the boundary,
  with and without fault injection.
"""

import random

import numpy as np
import pytest

from repro.controller.device import SimulatedSSD
from repro.faults import FaultConfig
from repro.perf.fingerprint import ftl_fingerprint
from repro.sim.request import IoOp, IoRequest


RECOVERABLE_FTLS = ("dloop", "dftl", "fast")
CRASH_POINTS_US = (50_000.0, 150_000.0, 400_000.0)


def _workload(num_lpns: int, n: int = 1500, seed: int = 31):
    rng = random.Random(seed)
    space = max(1, int(num_lpns * 0.6))
    t = 0.0
    requests = []
    for _ in range(n):
        t += rng.expovariate(1 / 350.0)
        op = IoOp.WRITE if rng.random() < 0.7 else IoOp.READ
        requests.append(IoRequest(t, rng.randrange(space), 1, op))
    return requests


def _crash_resume(small_geometry, name, crash_at_us, *, faults=None,
                  write_buffer_pages=None, sanitize=True):
    """Drive a fresh device through crash-at-t and resume; return the
    device plus the crash summary."""
    ssd = SimulatedSSD(small_geometry, ftl=name, sanitize=sanitize,
                       faults=faults, write_buffer_pages=write_buffer_pages)
    ssd.precondition(0.5)
    requests = _workload(small_geometry.num_lpns)
    pre = [r for r in requests if r.arrival_us < crash_at_us]
    post = [r for r in requests if r.arrival_us >= crash_at_us]
    info = ssd.run_with_crash(pre, crash_at_us)
    ssd.run(post)
    if ssd.sanitizer is not None:
        ssd.sanitizer.finalize()
    return ssd, info


@pytest.mark.parametrize("name", RECOVERABLE_FTLS)
@pytest.mark.parametrize("crash_at_us", CRASH_POINTS_US)
def test_recovered_table_matches_pre_crash(small_geometry, name, crash_at_us):
    ssd = SimulatedSSD(small_geometry, ftl=name, sanitize=True)
    ssd.precondition(0.5)
    requests = _workload(small_geometry.num_lpns)
    ssd.controller.submit_many(
        [r for r in requests if r.arrival_us < crash_at_us])
    ssd.engine.run(until=crash_at_us)
    snapshot = np.array(ssd.ftl.page_table, dtype=np.int64).copy()

    info = ssd.crash()
    assert info["at_us"] == crash_at_us
    assert info["recovered_mappings"] == int(np.count_nonzero(snapshot != -1))
    assert np.array_equal(np.array(ssd.ftl.page_table, dtype=np.int64),
                          snapshot)
    ssd.verify()

    # The device stays usable: resume the rest of the trace.
    ssd.run([r for r in requests if r.arrival_us >= crash_at_us])
    ssd.verify()
    assert ssd.sanitizer.finalize()["violations"] == 0


@pytest.mark.parametrize("name", RECOVERABLE_FTLS)
def test_crash_recovery_is_reproducible(small_geometry, name):
    """Same trace + same crash point on two fresh devices ⇒ identical
    post-resume fingerprints (recovery is deterministic)."""
    crash_at = CRASH_POINTS_US[1]
    a, info_a = _crash_resume(small_geometry, name, crash_at)
    b, info_b = _crash_resume(small_geometry, name, crash_at)
    assert info_a == info_b
    assert ftl_fingerprint(a.ftl, a.engine.now) == \
           ftl_fingerprint(b.ftl, b.engine.now)


@pytest.mark.parametrize("name", RECOVERABLE_FTLS)
def test_crash_with_faults_across_boundary(small_geometry, name):
    """Faults before *and* after the crash; the shadow model and the
    FTL's own integrity check stay clean across the boundary."""
    config = FaultConfig(seed=17, program_fail_rate=0.01,
                         read_error_rate=0.02, read_uncorrectable_rate=0.002,
                         program_fails_to_retire=2)
    ssd, info = _crash_resume(small_geometry, name, CRASH_POINTS_US[1],
                              faults=config)
    assert info["recovered_mappings"] > 0
    ssd.verify()
    # both run segments saw traffic; fault accounting accumulated
    assert ssd.faults.plan.program_decisions > 0
    assert ssd.faults.plan.read_decisions > 0


def test_crash_drops_write_buffer(small_geometry):
    """Unflushed buffered writes are lost data, reported as such."""
    ssd = SimulatedSSD(small_geometry, ftl="dloop", write_buffer_pages=8)
    ssd.precondition(0.5)
    # Buffer a few writes at t=0 without letting the engine run them
    # to completion: submit and crash immediately.
    writes = [IoRequest(float(i), i, 1, IoOp.WRITE) for i in range(4)]
    ssd.controller.submit_many(writes)
    ssd.engine.run(until=10.0)
    info = ssd.crash()
    assert info["lost_buffered_pages"] > 0
    assert len(ssd.write_buffer) == 0
    ssd.verify()


def test_crash_clears_pending_events(small_geometry):
    ssd = SimulatedSSD(small_geometry, ftl="dloop")
    ssd.precondition(0.5)
    requests = _workload(small_geometry.num_lpns, n=400)
    ssd.controller.submit_many(requests)
    ssd.engine.run(until=requests[10].arrival_us)
    info = ssd.crash()
    assert info["dropped_events"] > 0
    assert ssd.controller.outstanding == 0
    # the engine is empty: running again returns immediately
    assert ssd.engine.run() == ssd.engine.now


def test_crash_then_power_cycle_round_trip(small_geometry):
    """crash() composes with the existing power_cycle() path."""
    ssd = SimulatedSSD(small_geometry, ftl="dloop", sanitize=True)
    ssd.precondition(0.5)
    ssd.run(_workload(small_geometry.num_lpns, n=600))
    table = np.array(ssd.ftl.page_table, dtype=np.int64).copy()
    ssd.crash()
    ssd.power_cycle()
    assert np.array_equal(np.array(ssd.ftl.page_table, dtype=np.int64), table)
    assert ssd.sanitizer.finalize()["violations"] == 0
