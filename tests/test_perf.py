"""Tests for the repro.perf benchmark/regression harness."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.perf import (
    BENCHMARKS,
    checksum_int64,
    compare_reports,
    engine_fingerprint,
    load_report,
    run_suite,
    save_report,
)
from repro.perf.harness import BenchReport
from repro.sim.engine import Engine


# ---- fingerprints ----------------------------------------------------------


def test_checksum_identical_across_backing_stores():
    from array import array

    values = [5, -1, 0, 2**40, -(2**40)]
    as_numpy = np.asarray(values, dtype=np.int64)
    as_flat = array("q", values)
    assert checksum_int64(as_numpy) == checksum_int64(as_flat)


def test_checksum_distinguishes_content():
    a = np.asarray([1, 2, 3], dtype=np.int64)
    b = np.asarray([1, 2, 4], dtype=np.int64)
    assert checksum_int64(a) != checksum_int64(b)


def test_engine_fingerprint_clock_repr_roundtrips():
    engine = Engine()
    engine.schedule_at(0.1 + 0.2, lambda: None)  # a classic non-exact double
    engine.run()
    fp = engine_fingerprint(engine)
    assert float(fp["final_clock"]) == engine.now
    assert fp["events_processed"] == 1
    assert fp["pending"] == 0


# ---- suite -----------------------------------------------------------------


def test_suite_has_exactly_one_headline():
    assert sum(1 for b in BENCHMARKS if b.headline) == 1


def test_benchmark_names_are_unique():
    names = [b.name for b in BENCHMARKS]
    assert len(names) == len(set(names))


def test_run_suite_unknown_benchmark_rejected():
    with pytest.raises(ValueError, match="unknown benchmark"):
        run_suite(quick=True, only=["no-such-bench"])


def test_run_suite_repeat_must_be_positive():
    with pytest.raises(ValueError):
        run_suite(quick=True, repeat=0)


def test_engine_churn_deterministic_across_repeats():
    # repeat=2 exercises the harness's own fingerprint cross-check.
    report = run_suite(quick=True, only=["engine-churn"], repeat=2)
    (rec,) = report.records
    assert rec.name == "engine-churn"
    assert rec.unit == "events"
    assert rec.work_units > 0
    assert rec.wall_s > 0
    assert rec.throughput_per_s > 0
    assert rec.peak_rss_kb > 0
    assert rec.fingerprint["pending"] == 0


# ---- persistence and gating ------------------------------------------------


def _tiny_report() -> BenchReport:
    return run_suite(quick=True, only=["engine-churn"], label="t")


def test_report_roundtrip(tmp_path):
    report = _tiny_report()
    path = str(tmp_path / "bench.json")
    save_report(report, path)
    back = load_report(path)
    assert back.label == report.label
    assert back.quick == report.quick
    assert [r.as_dict() for r in back.records] == [r.as_dict() for r in report.records]


def test_compare_identical_reports_ok():
    report = _tiny_report()
    result = compare_reports(report, report)
    assert result.ok
    assert result.throughput["engine-churn"][0] == result.throughput["engine-churn"][1]


def test_compare_flags_fingerprint_drift():
    current = _tiny_report()
    baseline = _tiny_report()
    baseline.records[0].fingerprint = dict(
        baseline.records[0].fingerprint, events_processed=1
    )
    result = compare_reports(current, baseline)
    assert not result.ok
    assert result.mismatches == ["engine-churn"]


def test_compare_flags_missing_benchmark():
    current = BenchReport(label="empty", quick=True)
    baseline = _tiny_report()
    result = compare_reports(current, baseline)
    assert not result.ok
    assert result.missing == ["engine-churn"]


def test_compare_rejects_mode_mismatch():
    quick = _tiny_report()
    full = BenchReport(label="f", quick=False, records=list(quick.records))
    with pytest.raises(ValueError, match="mode mismatch"):
        compare_reports(full, quick)


def test_timings_never_gate():
    current = _tiny_report()
    baseline = _tiny_report()
    baseline.records[0].wall_s = 1e-9  # absurdly fast baseline
    baseline.records[0].throughput_per_s = 1e12
    assert compare_reports(current, baseline).ok


# ---- engine batch scheduling (used by the device request path) -------------


def test_schedule_many_matches_sequential_scheduling():
    rng = random.Random(11)
    times = [rng.random() * 50 for _ in range(200)]

    fired_a: list = []
    a = Engine()
    for i, t in enumerate(times):
        a.schedule_at(t, fired_a.append, i)
    a.run()

    fired_b: list = []
    b = Engine()
    handles = b.schedule_many((t, fired_b.append, i) for i, t in enumerate(times))
    assert len(handles) == len(times)
    assert b.pending == len(times)
    b.run()

    assert fired_a == fired_b
    assert a.now == b.now


def test_schedule_many_rejects_past_times():
    engine = Engine()
    engine.schedule_at(5.0, lambda: None)
    engine.run()
    with pytest.raises(ValueError):
        engine.schedule_many([(1.0, lambda: None)])


def test_schedule_many_empty_is_noop():
    engine = Engine()
    assert engine.schedule_many([]) == []
    assert engine.pending == 0
