"""Property-based tests for the DES engine, geometry and parsers."""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash.geometry import KB, SSDGeometry
from repro.sim.engine import Engine
from repro.traces.model import TraceRequest
from repro.traces.parser import parse_disksim, parse_spc, write_disksim, write_spc


# ---- engine --------------------------------------------------------------------


@given(times=st.lists(st.floats(0, 1e9, allow_nan=False, allow_infinity=False), max_size=100))
def test_engine_fires_in_sorted_order(times):
    engine = Engine()
    fired = []
    for t in times:
        engine.schedule_at(t, fired.append, t)
    engine.run()
    assert fired == sorted(times)
    assert engine.events_processed == len(times)


@given(
    times=st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=50),
    cancel_mask=st.lists(st.booleans(), min_size=1, max_size=50),
)
def test_engine_cancellation(times, cancel_mask):
    engine = Engine()
    fired = []
    handles = [engine.schedule_at(t, fired.append, i) for i, t in enumerate(times)]
    expected = []
    for i, handle in enumerate(handles):
        if i < len(cancel_mask) and cancel_mask[i]:
            engine.cancel(handle)
        else:
            expected.append(i)
    engine.run()
    assert sorted(fired) == expected


@given(chain_depth=st.integers(1, 30), step=st.floats(0.001, 1000, allow_nan=False))
def test_engine_chained_scheduling(chain_depth, step):
    engine = Engine()
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < chain_depth:
            engine.schedule_after(step, tick)

    engine.schedule_at(0.0, tick)
    engine.run()
    assert count[0] == chain_depth
    assert engine.now >= (chain_depth - 1) * step * 0.999


# ---- geometry -------------------------------------------------------------------


@given(
    channels=st.sampled_from([1, 2, 4, 8]),
    dies=st.integers(1, 4),
    planes=st.sampled_from([1, 2, 4]),
    blocks=st.integers(4, 256),
    page_kb=st.sampled_from([1, 2, 4, 8]),
    extra=st.floats(0, 20, allow_nan=False),
)
@settings(max_examples=50)
def test_geometry_arithmetic_consistent(channels, dies, planes, blocks, page_kb, extra):
    geom = SSDGeometry(
        channels=channels,
        dies_per_chip=dies,
        planes_per_die=planes,
        blocks_per_plane=blocks,
        pages_per_block=32,
        page_size=page_kb * KB,
        extra_blocks_percent=extra,
    )
    assert geom.num_planes == channels * dies * planes
    assert geom.num_physical_pages == geom.num_physical_blocks * geom.pages_per_block
    assert geom.capacity_bytes == geom.num_lpns * geom.page_size
    assert geom.extra_blocks_per_plane >= 0
    assert geom.physical_blocks_per_plane >= geom.blocks_per_plane
    # every plane maps to a valid channel and die; dies partition planes
    seen = set()
    for plane in range(geom.num_planes):
        assert 0 <= geom.plane_to_channel(plane) < channels
        die = geom.plane_to_die(plane)
        assert 0 <= die < geom.num_dies
        seen.add(plane)
    assert seen == set(range(geom.num_planes))


@given(capacity_mb=st.integers(8, 4096))
@settings(max_examples=30)
def test_from_capacity_close_to_target(capacity_mb):
    target = capacity_mb * 1024 * 1024
    geom = SSDGeometry.from_capacity(target)
    # rounding to whole blocks per plane: within one block row of target
    tolerance = geom.num_planes * geom.block_size
    assert abs(geom.capacity_bytes - target) <= tolerance


# ---- parsers -----------------------------------------------------------------------


request_strategy = st.builds(
    TraceRequest,
    arrival_us=st.floats(0, 1e8, allow_nan=False).map(lambda x: round(x, 3)),
    offset_bytes=st.integers(0, 2**40).map(lambda x: x * 512),
    size_bytes=st.integers(1, 2**20),
    is_write=st.booleans(),
)


@given(trace=st.lists(request_strategy, max_size=50))
def test_spc_round_trip_property(trace):
    buffer = io.StringIO()
    write_spc(trace, buffer)
    buffer.seek(0)
    back = parse_spc(buffer)
    assert len(back) == len(trace)
    for a, b in zip(trace, back):
        assert a.is_write == b.is_write
        assert a.size_bytes == b.size_bytes
        assert a.offset_bytes == b.offset_bytes  # sector-aligned by construction


@given(trace=st.lists(request_strategy, max_size=50))
def test_disksim_round_trip_property(trace):
    buffer = io.StringIO()
    write_disksim(trace, buffer)
    buffer.seek(0)
    back = parse_disksim(buffer)
    assert len(back) == len(trace)
    for a, b in zip(trace, back):
        assert a.is_write == b.is_write
        assert b.size_bytes >= a.size_bytes  # rounded up to sectors
        assert b.size_bytes - a.size_bytes < 512
