"""SimSanitizer: clean runs pass, injected violations fail by rule name.

The sanitizer must be a pure observer (sanitized run == unsanitized run,
bit for bit) and must fail fast — with the violated rule's name — when
fed a corrupted mapping, an off-plane or parity-breaking copy-back, an
illegal block lifecycle, or out-of-order engine events.
"""

import random

import numpy as np
import pytest

from repro.controller.device import SimulatedSSD
from repro.flash.address import PageState
from repro.lint import SanitizerError, SimSanitizer
from repro.obs.tracebus import BUS
from repro.sim.request import IoOp, IoRequest


@pytest.fixture(autouse=True)
def clean_global_bus():
    yield
    BUS.clear()


def update_heavy_workload(geometry, n=1200, seed=33):
    """Random updates over a tight footprint: forces GC and copy-back."""
    rng = random.Random(seed)
    space = int(geometry.num_lpns * 0.55)
    requests, t = [], 0.0
    for _ in range(n):
        t += rng.expovariate(1 / 400.0)
        lpn = rng.randrange(space)
        count = min(rng.choice((1, 1, 2)), geometry.num_lpns - lpn)
        op = IoOp.WRITE if rng.random() < 0.85 else IoOp.READ
        requests.append(IoRequest(t, lpn, count, op))
    return requests


def fingerprint(ssd):
    return {
        "response_us": list(ssd.stats.response_us),
        "counters": ssd.counters.as_dict(),
        "gc_passes": ssd.ftl.gc_stats.passes,
        "gc_copyback": ssd.ftl.gc_stats.copyback_moves,
        "mapped": sorted(int(l) for l in ssd.ftl.mapped_lpns()),
    }


def run_dloop(geometry, *, sanitize):
    ssd = SimulatedSSD(geometry, ftl="dloop", sanitize=sanitize)
    ssd.precondition(0.7)
    ssd.run(update_heavy_workload(geometry))
    return ssd


# ---------------------------------------------------------------------------
# clean runs


class TestCleanRun:
    def test_gc_heavy_run_has_zero_violations(self, small_geometry):
        ssd = run_dloop(small_geometry, sanitize=True)
        assert ssd.ftl.gc_stats.copyback_moves > 0  # guard: checks exercised
        report = ssd.sanitizer.finalize()
        assert report["violations"] == 0
        assert report["migrations_checked"] == ssd.ftl.gc_stats.copyback_moves
        assert report["sweeps"] > ssd.ftl.gc_stats.passes  # per-pass + final
        assert report["events_checked"] > 0
        assert report["spans_checked"] > 0  # occupancy checker exercised
        assert BUS.subscriber_count == 0  # finalize detached

    def test_sanitized_run_is_bit_identical(self, small_geometry):
        sanitized = run_dloop(small_geometry, sanitize=True)
        sanitized.sanitizer.finalize()
        plain = run_dloop(small_geometry, sanitize=False)
        assert fingerprint(plain) == fingerprint(sanitized)

    @pytest.mark.parametrize("ftl_name", ["dftl", "pagemap"])
    def test_other_ftls_pass_too(self, small_geometry, ftl_name):
        ssd = SimulatedSSD(small_geometry, ftl=ftl_name, sanitize=True)
        ssd.precondition(0.7)
        ssd.run(update_heavy_workload(small_geometry, n=500))
        assert ssd.sanitizer.finalize()["violations"] == 0


# ---------------------------------------------------------------------------
# injected violations — each must raise SanitizerError naming the rule


@pytest.fixture
def watched(small_geometry):
    """A lightly-used SSD with a manually attached sanitizer."""
    ssd = SimulatedSSD(small_geometry, ftl="dloop")
    ssd.precondition(0.5)
    sanitizer = SimSanitizer(ssd.ftl).attach()
    yield ssd, sanitizer
    sanitizer.detach()


def expect_rule(rule, fn):
    with pytest.raises(SanitizerError) as excinfo:
        fn()
    assert excinfo.value.rule == rule
    assert rule in str(excinfo.value)
    return excinfo.value


class TestInjectedViolations:
    def test_cross_plane_copyback(self, watched):
        ssd, sanitizer = watched
        ppb = ssd.geometry.pages_per_block
        plane_pages = ppb * ssd.geometry.physical_blocks_per_plane
        err = expect_rule(
            "copyback-plane",
            lambda: BUS.emit(
                "gc", "migrate", 10.0, 0.0,
                {"mode": "copyback", "from_ppn": 0, "to_ppn": plane_pages},
            ),
        )
        assert err.snapshot["event"]["to_ppn"] == plane_pages

    def test_copyback_parity_mismatch(self, watched):
        ssd, sanitizer = watched
        ppb = ssd.geometry.pages_per_block
        # same plane, even page offset -> odd page offset
        expect_rule(
            "copyback-parity",
            lambda: BUS.emit(
                "gc", "migrate", 10.0, 0.0,
                {"mode": "copyback", "from_ppn": 0, "to_ppn": ppb + 1},
            ),
        )

    def test_controller_mode_migrations_may_cross_planes(self, watched):
        ssd, sanitizer = watched
        plane_pages = ssd.geometry.pages_per_block * ssd.geometry.physical_blocks_per_plane
        BUS.emit(
            "gc", "migrate", 10.0, 0.0,
            {"mode": "controller", "from_ppn": 0, "to_ppn": plane_pages + 1},
        )  # no raise: the plane/parity rules only bind copy-back

    def test_corrupted_mapping(self, watched):
        ssd, sanitizer = watched
        ftl = ssd.ftl
        lpn = int(ftl.mapped_lpns()[0])
        free_ppns = np.flatnonzero(ftl.array.page_state_np == PageState.FREE)
        ftl.page_table[lpn] = int(free_ppns[-1])  # point a live lpn at a FREE page
        expect_rule("mapping-coherence", sanitizer.check_now)

    def test_reverse_map_mismatch(self, watched):
        ssd, sanitizer = watched
        ftl = ssd.ftl
        lpn_a, lpn_b = (int(l) for l in ftl.mapped_lpns()[:2])
        ftl.page_table[lpn_a] = ftl.page_table[lpn_b]  # valid page, wrong owner
        expect_rule("mapping-coherence", sanitizer.check_now)

    def test_double_erase(self, watched):
        ssd, sanitizer = watched
        block = int(np.flatnonzero(ssd.ftl.array.block_free_mask)[0])
        BUS.emit("array", "alloc_block", 0.0, 0.0, {"block": block, "plane": 0}, None, "i")
        BUS.emit("array", "erase", 0.0, 0.0, {"block": block}, None, "i")
        expect_rule(
            "double-erase",
            lambda: BUS.emit("array", "erase", 0.0, 0.0, {"block": block}, None, "i"),
        )

    def test_erase_of_pooled_block(self, watched):
        ssd, sanitizer = watched
        block = int(np.flatnonzero(ssd.ftl.array.block_free_mask)[0])
        expect_rule(
            "double-erase",
            lambda: BUS.emit("array", "erase", 0.0, 0.0, {"block": block}, None, "i"),
        )

    def test_program_into_pooled_block(self, watched):
        ssd, sanitizer = watched
        block = int(np.flatnonzero(ssd.ftl.array.block_free_mask)[0])
        ppn = block * ssd.geometry.pages_per_block
        expect_rule(
            "program-free-block",
            lambda: BUS.emit("array", "program", 0.0, 0.0, {"ppn": ppn, "owner": 1}, None, "i"),
        )

    def test_reprogram_of_valid_page(self, watched):
        ssd, sanitizer = watched
        ppn = int(np.flatnonzero(ssd.ftl.array.page_state_np == PageState.VALID)[0])
        block = ppn // ssd.geometry.pages_per_block
        # rewind the shadow write pointer so only the state check can fire
        sanitizer._shadow_ptr[block] = ppn % ssd.geometry.pages_per_block
        expect_rule(
            "reprogram",
            lambda: BUS.emit("array", "program", 0.0, 0.0, {"ppn": ppn, "owner": 1}, None, "i"),
        )

    def test_free_accounting_active_block_in_pool(self, watched):
        ssd, sanitizer = watched
        array = ssd.ftl.array
        free_block = int(np.flatnonzero(array.block_free_mask)[0])
        ssd.ftl.allocators[0].current_block = free_block
        expect_rule("free-accounting", sanitizer.check_now)

    def test_engine_time_running_backwards(self, watched):
        ssd, sanitizer = watched
        BUS.emit("engine", "dispatch", 100.0, 0.0, {"seq": 1}, None, "i")
        expect_rule(
            "event-order",
            lambda: BUS.emit("engine", "dispatch", 50.0, 0.0, {"seq": 2}, None, "i"),
        )

    def test_same_timestamp_out_of_order(self, watched):
        ssd, sanitizer = watched
        BUS.emit("engine", "dispatch", 100.0, 0.0, {"seq": 7}, None, "i")
        expect_rule(
            "event-order",
            lambda: BUS.emit("engine", "dispatch", 100.0, 0.0, {"seq": 3}, None, "i"),
        )

    def test_violation_is_counted_in_report(self, watched):
        ssd, sanitizer = watched
        with pytest.raises(SanitizerError):
            BUS.emit("engine", "dispatch", 100.0, 0.0, {"seq": 1}, None, "i")
            BUS.emit("engine", "dispatch", 50.0, 0.0, {"seq": 2}, None, "i")
        assert sanitizer.report()["violations"] == 1

    def test_snapshot_names_the_state(self, watched):
        ssd, sanitizer = watched
        ftl = ssd.ftl
        lpn = int(ftl.mapped_lpns()[0])
        free_ppns = np.flatnonzero(ftl.array.page_state_np == PageState.FREE)
        ftl.page_table[lpn] = int(free_ppns[-1])
        err = expect_rule("mapping-coherence", sanitizer.check_now)
        assert err.snapshot["lpn"] == lpn
        assert "free_blocks" in err.snapshot


# ---------------------------------------------------------------------------
# plane/channel occupancy races


def flash_span(name, ts, dur, plane=0, channel=0):
    BUS.emit("flash", name, ts, dur, {"plane": plane, "channel": channel}, None, "X")


class TestOccupancyRaces:
    def test_overlapping_plane_spans_raise(self, watched):
        ssd, sanitizer = watched
        flash_span("program", 100.0, 50.0)
        err = expect_rule("plane-occupancy", lambda: flash_span("read", 120.0, 10.0))
        assert err.snapshot["plane"] == 0
        assert err.snapshot["busy"][:2] == [100.0, 150.0]
        assert err.snapshot["span"] == [120.0, 130.0, "read"]

    def test_back_to_back_spans_are_legal(self, watched):
        ssd, sanitizer = watched
        flash_span("program", 100.0, 50.0)
        flash_span("read", 150.0, 10.0)  # starts exactly at the previous end

    def test_distinct_planes_may_overlap(self, watched):
        ssd, sanitizer = watched
        flash_span("program", 100.0, 50.0, plane=0)
        flash_span("program", 100.0, 50.0, plane=1)  # plane parallelism is the point

    def test_overlapping_channel_transfers_raise(self, watched):
        ssd, sanitizer = watched
        flash_span("xfer_in", 100.0, 20.0, plane=0, channel=1)
        expect_rule(
            "channel-occupancy",
            lambda: flash_span("xfer_out", 110.0, 5.0, plane=1, channel=1),
        )

    def test_copy_back_occupies_plane_but_no_channel(self, watched):
        ssd, sanitizer = watched
        BUS.emit("flash", "copy_back", 100.0, 200.0, {"plane": 0}, None, "X")
        flash_span("xfer_in", 150.0, 20.0, plane=1, channel=0)  # channel stays free
        expect_rule("plane-occupancy", lambda: flash_span("read", 150.0, 10.0, plane=0))

    def test_timeline_reset_clears_history(self, watched):
        ssd, sanitizer = watched
        flash_span("program", 5_000.0, 50.0)
        BUS.emit("flash", "timeline_reset", 0.0, 0.0, {}, None, "i")
        flash_span("read", 100.0, 10.0)  # pre-reset history must not bind

    def test_spans_are_counted_in_report(self, watched):
        ssd, sanitizer = watched
        before = sanitizer.spans_checked
        flash_span("program", 100.0, 50.0)
        flash_span("read", 150.0, 10.0)
        assert sanitizer.spans_checked == before + 2
        assert sanitizer.report()["spans_checked"] == sanitizer.spans_checked


# ---------------------------------------------------------------------------
# facade integration


class TestFacade:
    def test_device_kwarg_attaches_and_exposes(self, small_geometry):
        ssd = SimulatedSSD(small_geometry, sanitize=True)
        assert ssd.sanitizer is not None
        assert BUS.subscriber_count == 1
        ssd.sanitizer.finalize()
        assert BUS.subscriber_count == 0

    def test_run_simulation_folds_report_into_extras(self, small_geometry):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_simulation
        from repro.traces.synthetic import generate, make_workload

        config = ExperimentConfig(geometry=small_geometry, ftl="dloop",
                                  precondition_fill=0.5)
        # footprint must cover one workload chunk; offsets wrap mod capacity
        spec = make_workload("financial1", num_requests=200,
                             footprint_bytes=256 * 1024, seed=5)
        result = run_simulation(generate(spec), config, sanitize=True)
        assert result.extras["sanitizer"]["violations"] == 0
        assert BUS.subscriber_count == 0
