"""Power-loss recovery: rebuild mapping structures from flash state."""

import random

import numpy as np
import pytest

from repro.ftl.registry import create_ftl


def churn(ftl, n=2000, seed=77):
    rng = random.Random(seed)
    space = int(ftl.geometry.num_lpns * 0.6)
    for i in range(n):
        lpn = rng.randrange(space)
        roll = rng.random()
        if roll < 0.6:
            ftl.write_page(lpn, float(i))
        elif roll < 0.7:
            ftl.trim_page(lpn, float(i))
        else:
            ftl.read_page(lpn, float(i))


@pytest.mark.parametrize(
    "name", ["dloop", "dftl", "fast", "bast", "last", "superblock", "pagemap"]
)
def test_rebuild_recovers_exact_mapping(small_geometry, timing, name):
    ftl = create_ftl(name, small_geometry, timing)
    churn(ftl)
    before = ftl.page_table_np.copy()
    recovered = ftl.rebuild_mapping()
    assert np.array_equal(ftl.page_table_np, before)
    assert recovered == int(np.count_nonzero(before != -1))
    ftl.verify_integrity()


def test_rebuild_recovers_gtd(small_geometry, timing):
    ftl = create_ftl("dloop", small_geometry, timing, cmt_entries=64)
    churn(ftl)
    gtd_view = np.frombuffer(ftl.gtd._tpage_ppn, dtype=np.int64)
    gtd_before = gtd_view.copy()
    # corrupt the SRAM state, then recover
    ftl.page_table_np.fill(-1)
    gtd_view.fill(-1)
    ftl.rebuild_mapping()
    # every materialised translation page found again
    assert np.array_equal(gtd_view != -1, gtd_before != -1)
    assert np.array_equal(
        gtd_view[gtd_before != -1], gtd_before[gtd_before != -1]
    )
    ftl.verify_integrity()


def test_rebuild_clears_volatile_cmt(small_geometry, timing):
    ftl = create_ftl("dftl", small_geometry, timing, cmt_entries=64)
    churn(ftl, n=800)
    assert len(ftl.cmt) > 0
    ftl.rebuild_mapping()
    assert len(ftl.cmt) == 0  # SRAM cache did not survive the power cycle


def test_device_usable_after_recovery(small_geometry, timing):
    """Writes and reads continue correctly on the rebuilt state."""
    ftl = create_ftl("dloop", small_geometry, timing, cmt_entries=64)
    churn(ftl, n=1500)
    ftl.rebuild_mapping()
    rng = random.Random(88)
    space = int(small_geometry.num_lpns * 0.6)
    for i in range(800):
        ftl.write_page(rng.randrange(space), float(i))
    ftl.verify_integrity()


def test_rebuild_on_fresh_device(small_geometry, timing):
    ftl = create_ftl("pagemap", small_geometry, timing)
    assert ftl.rebuild_mapping() == 0
    assert not ftl.mapped_lpns().size
