"""Determinism linter: rule catalogue, pragmas, CLI, and self-cleanliness."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import ALL_CODES, run_lint

FIXTURE = Path(__file__).parent / "fixtures" / "lint_rules_fixture.py"
SRC = Path(__file__).parent.parent / "src"

#: (line, col, code) for every violation planted in the fixture.
EXPECTED_FIXTURE_FINDINGS = [
    (12, 12, "DL101"),
    (16, 12, "DL102"),
    (20, 18, "DL103"),
    (25, 12, "DL104"),
    (28, 28, "DL105"),
]


def lint_source(tmp_path, source, **kwargs):
    path = tmp_path / "snippet.py"
    path.write_text(textwrap.dedent(source))
    return run_lint([str(path)], **kwargs)


# ---------------------------------------------------------------------------
# the fixture exercises every rule code exactly once


class TestFixture:
    def test_every_determinism_code_fires_exactly_once(self):
        result = run_lint([str(FIXTURE)])
        got = [(f.line, f.col, f.code) for f in result.findings]
        assert got == EXPECTED_FIXTURE_FINDINGS
        # This fixture covers the DL1xx determinism family; the DL2xx
        # schema/dataflow codes have their own fixtures (test_schema.py,
        # test_dataflow.py).
        determinism = [c for c in ALL_CODES if c.startswith("DL1")]
        assert sorted({f.code for f in result.findings}) == sorted(determinism)
        assert result.exit_code == 1

    def test_catalogue_includes_schema_and_dataflow_codes(self):
        assert {"DL201", "DL202", "DL203", "DL210"} <= set(ALL_CODES)

    def test_fixture_pragmas_are_counted(self):
        result = run_lint([str(FIXTURE)])
        # suppressed_wall_clock (DL101) + suppressed_everything (DL102)
        assert result.suppressed == 2

    def test_text_rendering(self):
        result = run_lint([str(FIXTURE)])
        text = result.render_text()
        for line, col, code in EXPECTED_FIXTURE_FINDINGS:
            assert f"{FIXTURE}:{line}:{col}: {code} " in text
        assert "5 findings (2 suppressed) in 1 files" in text

    def test_json_rendering(self):
        result = run_lint([str(FIXTURE)])
        payload = json.loads(result.render_json())
        assert payload["version"] == 2
        assert payload["files_scanned"] == 1
        assert payload["suppressed"] == 2
        assert payload["errors"] == []
        got = [(f["line"], f["col"], f["code"]) for f in payload["findings"]]
        assert got == EXPECTED_FIXTURE_FINDINGS
        assert all(f["message"] for f in payload["findings"])


# ---------------------------------------------------------------------------
# individual rules


class TestRules:
    def test_dl101_aliased_wall_clock(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            from time import perf_counter as tick

            def f():
                return tick()
            """,
        )
        assert [f.code for f in result.findings] == ["DL101"]

    def test_dl101_datetime_now(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import datetime

            def f():
                return datetime.datetime.now()
            """,
        )
        assert [f.code for f in result.findings] == ["DL101"]

    def test_dl102_numpy_global_rng(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import numpy as np

            def f():
                return np.random.rand(4)
            """,
        )
        assert [f.code for f in result.findings] == ["DL102"]

    def test_dl102_seeded_rng_is_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import random
            import numpy as np

            def f(seed):
                a = random.Random(seed)
                b = np.random.default_rng(seed)
                return a.random() + b.random()
            """,
        )
        assert result.findings == []

    def test_dl102_unseeded_generators(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import random
            import numpy as np

            def f():
                return random.Random(), np.random.default_rng()
            """,
        )
        assert [f.code for f in result.findings] == ["DL102", "DL102"]

    def test_dl103_comprehension_and_list(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def f(mapping):
                planes = {1, 2, 3}
                a = [p for p in planes]
                b = list(mapping.keys())
                return a, b
            """,
        )
        assert [f.code for f in result.findings] == ["DL103", "DL103"]

    def test_dl103_sorted_iteration_is_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def f():
                planes = {1, 2, 3}
                return [p for p in sorted(planes)]
            """,
        )
        assert result.findings == []

    def test_dl103_min_with_total_key_is_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def f(costs):
                queue = {1, 2, 3}
                return min(queue, key=lambda q: (costs[q], q))
            """,
        )
        assert result.findings == []

    def test_dl103_min_with_partial_key_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def f(costs):
                queue = {1, 2, 3}
                return min(queue, key=lambda q: costs[q])
            """,
        )
        assert [f.code for f in result.findings] == ["DL103"]

    def test_dl104_timestamp_suffix(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def f(arrival_us, completion_us):
                return arrival_us != completion_us
            """,
        )
        assert [f.code for f in result.findings] == ["DL104"]

    def test_dl104_plain_floats_are_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def f(ratio, target):
                return ratio == target
            """,
        )
        assert result.findings == []

    def test_dl105_only_in_sim_packages(self, tmp_path):
        # Outside the repro tree every rule applies...
        result = lint_source(tmp_path, "def f(x=[]):\n    return x\n")
        assert [f.code for f in result.findings] == ["DL105"]
        # ...but inside repro it is scoped to simulator packages.
        pkg = tmp_path / "repro" / "metrics"
        pkg.mkdir(parents=True)
        path = pkg / "helper.py"
        path.write_text("def f(x=[]):\n    return x\n")
        assert run_lint([str(path)]).findings == []
        sim_pkg = tmp_path / "repro" / "ftl"
        sim_pkg.mkdir(parents=True)
        sim_path = sim_pkg / "helper.py"
        sim_path.write_text("def f(x=[]):\n    return x\n")
        assert [f.code for f in run_lint([str(sim_path)]).findings] == ["DL105"]


# ---------------------------------------------------------------------------
# pragmas


class TestPragmas:
    def test_line_pragma_single_code(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import time

            def f():
                return time.time()  # dl: disable=DL101
            """,
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_line_pragma_wrong_code_does_not_suppress(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import time

            def f():
                return time.time()  # dl: disable=DL102
            """,
        )
        assert [f.code for f in result.findings] == ["DL101"]

    def test_line_pragma_multiple_codes(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import time
            import random

            def f():
                return time.time() + random.random()  # dl: disable=DL101,DL102
            """,
        )
        assert result.findings == []
        assert result.suppressed == 2

    def test_file_pragma(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            # dl: disable-file=DL101
            import time

            def f():
                return time.time()

            def g():
                return time.time()
            """,
        )
        assert result.findings == []
        assert result.suppressed == 2

    def test_file_pragma_all(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            # dl: disable-file
            import time
            import random

            def f():
                return time.time() + random.random()
            """,
        )
        assert result.findings == []
        assert result.suppressed == 2


# ---------------------------------------------------------------------------
# driver behaviour


class TestRunner:
    def test_select_and_ignore(self):
        only_101 = run_lint([str(FIXTURE)], select=["DL101"])
        assert [f.code for f in only_101.findings] == ["DL101"]
        without_101 = run_lint([str(FIXTURE)], ignore=["DL101"])
        assert "DL101" not in {f.code for f in without_101.findings}
        assert len(without_101.findings) == 4

    def test_unknown_code_raises(self):
        with pytest.raises(ValueError, match="DL999"):
            run_lint([str(FIXTURE)], select=["DL999"])

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            run_lint(["no/such/path"])

    def test_syntax_error_reported_not_raised(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        result = run_lint([str(path)])
        assert result.findings == []
        assert len(result.errors) == 1
        assert result.exit_code == 1

    def test_directory_discovery_skips_pycache(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("import time\ntime.time()\n")
        (tmp_path / "ok.py").write_text("x = 1\n")
        result = run_lint([str(tmp_path)])
        assert result.files_scanned == 1
        assert result.findings == []

    def test_clean_file_exits_zero(self, tmp_path):
        result = lint_source(tmp_path, "def f(t_us):\n    return t_us + 1\n")
        assert result.exit_code == 0


# ---------------------------------------------------------------------------
# CLI + self-cleanliness


class TestCli:
    def test_cli_text(self, capsys):
        assert main(["lint", str(FIXTURE)]) == 1
        out = capsys.readouterr().out
        assert "DL101" in out and "5 findings" in out

    def test_cli_json(self, capsys):
        assert main(["lint", str(FIXTURE), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert [f["code"] for f in payload["findings"]] == [c for _, _, c in EXPECTED_FIXTURE_FINDINGS]

    def test_cli_select(self, capsys):
        assert main(["lint", str(FIXTURE), "--select", "DL105"]) == 1
        out = capsys.readouterr().out
        assert "DL105" in out and "DL101" not in out

    def test_cli_unknown_code(self, capsys):
        assert main(["lint", str(FIXTURE), "--select", "DL999"]) == 2

    def test_source_tree_is_clean(self, capsys):
        """Acceptance: ``repro-sim lint src`` exits 0 on this tree."""
        assert main(["lint", str(SRC)]) == 0
        assert "0 findings" in capsys.readouterr().out
