"""Streaming workload pipeline: generation identity, admission window,
parser duality, streaming stats, and bounded-memory behaviour."""

import random
import tracemalloc

import numpy as np
import pytest

from repro.controller.device import SimulatedSSD
from repro.flash.geometry import SSDGeometry
from repro.flash.timing import TimingParams
from repro.metrics.streaming import (
    DeterministicReservoir,
    RunningMoments,
    StreamingRequestStats,
)
from repro.perf.fingerprint import engine_fingerprint, ftl_fingerprint
from repro.sim.request import IoOp
from repro.traces.model import KB, SizeMix, WorkloadSpec
from repro.traces.parser import (
    iter_disksim,
    iter_spc,
    iter_trace_file,
    parse_disksim,
    parse_spc,
    write_disksim,
    write_spc,
)
from repro.traces.stream import io_requests, stream_workload
from repro.traces.synthetic import financial1, generate

MB = 1024 * KB


def small_spec(n=2000, seed=7, **overrides):
    base = dict(
        name="t",
        num_requests=n,
        write_fraction=0.6,
        request_rate_per_s=2000.0,
        size_mix=SizeMix((2 * KB, 4 * KB), (0.5, 0.5)),
        footprint_bytes=4 * MB,
        sequential_fraction=0.1,
        zipf_theta=0.9,
        chunk_bytes=64 * KB,
        seed=seed,
    )
    base.update(overrides)
    return WorkloadSpec(**base)


# ---- generation identity ----------------------------------------------------


def test_stream_equals_generate():
    spec = financial1(num_requests=4000)
    assert list(stream_workload(spec)) == generate(spec)


@pytest.mark.parametrize("chunk", [1, 7, 113, 2000, 50_000])
def test_chunk_size_never_changes_the_trace(chunk):
    spec = small_spec()
    assert list(stream_workload(spec, chunk_requests=chunk)) == generate(spec)


def test_bad_chunk_rejected():
    with pytest.raises(ValueError):
        next(stream_workload(small_spec(), chunk_requests=0))


def test_different_seeds_differ():
    assert generate(small_spec(seed=1)) != generate(small_spec(seed=2))


# ---- sequential-continuation cursor (bugfix) --------------------------------


def test_pure_sequential_stream_is_one_contiguous_chain():
    spec = small_spec(n=500, sequential_fraction=1.0,
                      size_mix=SizeMix.fixed(4 * KB), footprint_bytes=1 * MB)
    cursor = 0
    wraps = 0
    for r in stream_workload(spec):
        if cursor + r.size_bytes > spec.footprint_bytes:
            cursor = 0
            wraps += 1
        assert r.offset_bytes == cursor
        cursor += r.size_bytes
    # 500 x 4 KB through a 1 MB footprint must wrap (regression: the old
    # generator silently degraded near-limit sequential requests to
    # random ones instead of wrapping).
    assert wraps >= 1


def test_sequential_cursor_survives_random_interleaving():
    """Sequential requests chain with each other, not with whatever the
    last random request touched (the old single-cursor bug)."""
    spec = small_spec(n=5000, sequential_fraction=0.5)
    cursor = 0
    chained = 0
    for r in stream_workload(spec):
        expected = 0 if cursor + r.size_bytes > spec.footprint_bytes else cursor
        if r.offset_bytes == expected:
            cursor = expected + r.size_bytes
            chained += 1
    # ~half the trace must form the contiguous chain; with one shared
    # cursor the chain is broken by every random request and this
    # fraction collapses towards zero.
    assert chained >= spec.num_requests * 0.4


def test_arrivals_strictly_increase():
    last = -1.0
    for r in stream_workload(small_spec(n=1000)):
        assert r.arrival_us > last
        last = r.arrival_us


# ---- streaming file parsers -------------------------------------------------


def _mini_trace():
    spec = small_spec(n=200)
    return generate(spec)


def test_iter_spc_matches_parse_spc(tmp_path):
    path = str(tmp_path / "t.spc")
    with open(path, "w", encoding="ascii") as handle:
        write_spc(_mini_trace(), handle)
    assert list(iter_spc(path)) == parse_spc(path)


def test_iter_disksim_matches_parse_disksim(tmp_path):
    path = str(tmp_path / "t.dis")
    with open(path, "w", encoding="ascii") as handle:
        write_disksim(_mini_trace(), handle)
    assert list(iter_disksim(path)) == parse_disksim(path)


def test_iter_trace_file_dispatches_by_extension(tmp_path):
    trace = _mini_trace()
    spc = str(tmp_path / "t.spc")
    dis = str(tmp_path / "t.trace")
    with open(spc, "w", encoding="ascii") as handle:
        write_spc(trace, handle)
    with open(dis, "w", encoding="ascii") as handle:
        write_disksim(trace, handle)
    assert list(iter_trace_file(spc)) == parse_spc(spc)
    assert list(iter_trace_file(dis)) == parse_disksim(dis)


# ---- streamed replay == materialized replay ---------------------------------


REPLAY_GEOMETRY = SSDGeometry.from_capacity(8 * MB)


def _replay_spec(n=1200):
    return small_spec(n=n, footprint_bytes=4 * MB, seed=11)


def _materialized_run(ftl_name):
    spec = _replay_spec()
    ssd = SimulatedSSD(REPLAY_GEOMETRY, TimingParams(), ftl=ftl_name)
    ssd.precondition(0.6)
    capacity = REPLAY_GEOMETRY.capacity_bytes
    requests = []
    for r in generate(spec):
        offset = r.offset_bytes % capacity
        size = min(r.size_bytes, capacity - offset)
        requests.append(ssd.byte_request(
            r.arrival_us, offset, size, IoOp.WRITE if r.is_write else IoOp.READ
        ))
    end = ssd.run(requests)
    fp = ftl_fingerprint(ssd.ftl, end)
    fp.update(engine_fingerprint(ssd.engine))
    return fp, ssd.stats


@pytest.mark.parametrize("ftl_name", ["dloop", "dftl", "fast"])
def test_unbounded_stream_is_fingerprint_identical(ftl_name):
    spec = _replay_spec()
    ssd = SimulatedSSD(REPLAY_GEOMETRY, TimingParams(), ftl=ftl_name)
    ssd.precondition(0.6)
    end = ssd.run_stream(io_requests(stream_workload(spec), REPLAY_GEOMETRY))
    fp = ftl_fingerprint(ssd.ftl, end)
    fp.update(engine_fingerprint(ssd.engine))

    ref_fp, ref_stats = _materialized_run(ftl_name)
    assert fp == ref_fp
    assert ssd.stats.count == ref_stats.count
    assert ssd.stats.pages_written == ref_stats.pages_written
    assert ssd.stats.pages_read == ref_stats.pages_read
    # Welford mean vs np.mean of the full series: same data, so equal
    # to float accumulation noise.
    assert ssd.stats.mean_response_us() == pytest.approx(
        ref_stats.mean_response_us(), rel=1e-9
    )


@pytest.mark.parametrize("ftl_name", ["dloop", "dftl", "fast"])
def test_bounded_queue_depth_stays_legal(ftl_name):
    """NCQ admission changes timing only — FTL state stays coherent
    (sanitized run), every request completes, and the window bound
    actually binds."""
    spec = _replay_spec(n=800)
    ssd = SimulatedSSD(REPLAY_GEOMETRY, TimingParams(), ftl=ftl_name, sanitize=True)
    try:
        ssd.precondition(0.6)
        ssd.run_stream(
            io_requests(stream_workload(spec), REPLAY_GEOMETRY), queue_depth=4
        )
    finally:
        report = ssd.sanitizer.finalize()  # detaches from the global BUS
    assert report["violations"] == 0
    assert ssd.stats.count == spec.num_requests
    assert 1 <= ssd.controller.peak_outstanding <= 4
    ssd.verify()


def test_queue_depth_one_serializes():
    spec = _replay_spec(n=300)
    ssd = SimulatedSSD(REPLAY_GEOMETRY, TimingParams(), ftl="dloop")
    ssd.precondition(0.6)
    ssd.run_stream(
        io_requests(stream_workload(spec), REPLAY_GEOMETRY), queue_depth=1
    )
    assert ssd.stats.count == spec.num_requests
    assert ssd.controller.peak_outstanding == 1


def test_bad_queue_depth_rejected():
    ssd = SimulatedSSD(REPLAY_GEOMETRY, TimingParams(), ftl="dloop")
    with pytest.raises(ValueError):
        ssd.run_stream(iter(()), queue_depth=0)


def test_run_stream_keeps_list_stats_when_asked():
    from repro.controller.controller import RequestStats

    spec = _replay_spec(n=200)
    ssd = SimulatedSSD(REPLAY_GEOMETRY, TimingParams(), ftl="dloop")
    ssd.run_stream(
        io_requests(stream_workload(spec), REPLAY_GEOMETRY),
        streaming_stats=False,
    )
    assert isinstance(ssd.stats, RequestStats)
    assert len(ssd.stats.response_us) == spec.num_requests


# ---- experiment runner integration ------------------------------------------


def test_run_workload_stream_mode():
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import run_workload

    spec = _replay_spec(n=600)
    config = ExperimentConfig(geometry=REPLAY_GEOMETRY, ftl="dloop",
                              precondition_fill=0.6)
    result = run_workload(spec, config, stream=True, queue_depth=8)
    assert result.num_requests == spec.num_requests
    assert result.mean_response_ms > 0
    assert result.extras["stream"]["queue_depth"] == 8
    assert 1 <= result.extras["stream"]["peak_outstanding"] <= 8

    # Unbounded stream mode reports the same means as the materialized
    # runner (exact moments vs full-series numpy).
    streamed = run_workload(spec, config, stream=True)
    materialized = run_workload(spec, config)
    assert streamed.num_requests == materialized.num_requests
    assert streamed.mean_response_ms == pytest.approx(
        materialized.mean_response_ms, rel=1e-9
    )
    assert streamed.p99_response_ms == pytest.approx(
        materialized.p99_response_ms, rel=1e-9
    )


def test_run_simulation_stream_composes_with_crash():
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import run_simulation
    from repro.traces.stream import stream_workload

    spec = _replay_spec(n=400)
    config = ExperimentConfig(geometry=REPLAY_GEOMETRY, ftl="dloop",
                              precondition_fill=0.5)
    result = run_simulation(
        stream_workload(spec), config,
        stream=True, queue_depth=4, crash_at_us=15_000.0,
    )
    crash = result.extras["crash"]
    assert crash["at_us"] == 15_000.0
    assert crash["recovered_mappings"] > 0
    # The NCQ window in flight at the power cut is lost; everything else
    # (pre-crash completions + the resumed tail) is accounted.
    assert 0 < result.num_requests <= spec.num_requests


# ---- streaming stats --------------------------------------------------------


def test_running_moments_match_numpy():
    rng = random.Random(3)
    xs = [rng.expovariate(1 / 250.0) for _ in range(5000)]
    m = RunningMoments()
    for x in xs:
        m.push(x)
    assert m.count == len(xs)
    assert m.mean == pytest.approx(float(np.mean(xs)), rel=1e-12)
    assert m.std == pytest.approx(float(np.std(xs)), rel=1e-9)
    assert m.min == min(xs)
    assert m.max == max(xs)


def test_reservoir_exact_until_capacity():
    r = DeterministicReservoir(capacity=1000)
    xs = list(range(1000))
    for x in xs:
        r.push(float(x))
    assert r.exact
    assert r.percentile(50) == float(np.percentile(xs, 50))
    assert r.percentile(99) == float(np.percentile(xs, 99))


def test_reservoir_is_deterministic_and_bounded():
    def fill():
        r = DeterministicReservoir(capacity=64)
        for x in range(10_000):
            r.push(float(x))
        return r

    a, b = fill(), fill()
    assert len(a.values) == 64 and not a.exact
    assert a.values == b.values
    assert a.percentile(50) == b.percentile(50)
    # A uniform sample of 0..9999 should roughly centre its median.
    assert 2000 < a.percentile(50) < 8000


def test_reservoir_rejects_bad_capacity():
    with pytest.raises(ValueError):
        DeterministicReservoir(capacity=0)


def test_reservoir_percentile_empty_returns_zero():
    r = DeterministicReservoir(capacity=16)
    assert r.exact  # nothing evicted from nothing
    for q in (0, 50, 99, 100):
        assert r.percentile(q) == 0.0


def test_reservoir_percentile_single_sample():
    r = DeterministicReservoir(capacity=16)
    r.push(42.5)
    for q in (0, 50, 100):
        assert r.percentile(q) == 42.5


def test_reservoir_percentile_q100_is_max_while_exact():
    r = DeterministicReservoir(capacity=32)
    xs = [7.0, 1.0, 9.5, 3.25]
    for x in xs:
        r.push(x)
    assert r.percentile(100) == max(xs)
    assert r.percentile(0) == min(xs)


def test_reservoir_exact_to_sampled_crossover():
    r = DeterministicReservoir(capacity=8)
    for x in range(8):
        r.push(float(x))
    assert r.exact  # at capacity, nothing evicted yet
    assert r.percentile(100) == 7.0
    r.push(8.0)  # first overflow: sampling starts
    assert not r.exact
    assert len(r.values) == 8  # bounded at capacity
    # Still a valid sample of what was pushed, whatever was evicted.
    assert all(0.0 <= v <= 8.0 for v in r.values)
    assert 0.0 <= r.percentile(50) <= 8.0


def test_streaming_request_stats_summary():
    stats = StreamingRequestStats()
    stats.observe(100.0, is_write=True)
    stats.observe(300.0, is_write=False)
    assert stats.count == 2
    assert stats.writes.count == 1 and stats.reads.count == 1
    assert stats.mean_response_us() == pytest.approx(200.0)
    assert stats.mean_response_ms() == pytest.approx(0.2)
    summary = stats.summary()
    assert summary["requests"] == 2
    assert summary["min_us"] == 100.0 and summary["max_us"] == 300.0
    assert summary["reservoir_exact"] is True


# ---- bounded memory ---------------------------------------------------------


def test_stream_generation_memory_is_o_chunk():
    """Iterating the stream must not accumulate O(trace) state."""
    spec = small_spec(n=40_000)

    tracemalloc.start()
    count = 0
    for _ in stream_workload(spec, chunk_requests=1024):
        count += 1
    _, stream_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert count == spec.num_requests

    tracemalloc.start()
    materialized = generate(spec)
    _, full_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert len(materialized) == spec.num_requests

    # The lazy path holds one 1024-request block; the materialized path
    # holds 40k TraceRequest objects.  Require a decisive gap so the
    # test stays robust to allocator noise.
    assert stream_peak < full_peak / 4


# ---- stream-state hygiene on mid-run raises (bugfix) ------------------------


def test_midstream_crash_clears_admission_state():
    """A TortureCrash mid-stream must not leave the NCQ window armed:
    the next materialized run on the same device starts fresh instead
    of inheriting a phantom ``_stream_depth`` (regression)."""
    from repro.sim.request import IoRequest
    from repro.torture.arm import TortureArm, TortureCrash

    spec = _replay_spec(n=400)
    ssd = SimulatedSSD(REPLAY_GEOMETRY, TimingParams(), ftl="dloop")
    ssd.precondition(0.6)
    arm = TortureArm().attach(armed=("program", 25), ftl=ssd.ftl)
    try:
        with pytest.raises(TortureCrash):
            ssd.run_stream(
                io_requests(stream_workload(spec), REPLAY_GEOMETRY),
                queue_depth=4,
            )
    finally:
        arm.detach()
    controller = ssd.controller
    assert controller._stream is None
    assert controller._stream_depth is None
    assert controller._stream_window == 0
    assert controller._stream_deferred is False

    # The device is usable after recovery — and the follow-up run is
    # not throttled by the dead stream's queue depth.
    ssd.crash()
    t0 = ssd.engine.now
    before = ssd.stats.count
    reads = [IoRequest(t0 + i, i % REPLAY_GEOMETRY.num_lpns, 1, IoOp.READ)
             for i in range(32)]
    ssd.run(reads)
    assert ssd.stats.count == before + 32
    assert ssd.controller.peak_outstanding > 4


# ---- out-of-order streamed traces (bugfix) ----------------------------------


def _shuffled_requests(n=600, seed=3):
    """A replayable trace whose arrivals are NOT monotone."""
    spec = small_spec(n=n, footprint_bytes=4 * MB, seed=9)
    rng = random.Random(seed)
    trace = generate(spec)
    rng.shuffle(trace)
    capacity = REPLAY_GEOMETRY.capacity_bytes
    ssd = SimulatedSSD(REPLAY_GEOMETRY, TimingParams(), ftl="dloop")
    requests = []
    for r in trace:
        offset = r.offset_bytes % capacity
        size = min(r.size_bytes, capacity - offset)
        requests.append(ssd.byte_request(
            r.arrival_us, offset, size, IoOp.WRITE if r.is_write else IoOp.READ
        ))
    return requests


def test_unordered_stream_raises_by_default():
    from repro.controller.controller import StreamOrderError

    ssd = SimulatedSSD(REPLAY_GEOMETRY, TimingParams(), ftl="dloop")
    ssd.precondition(0.6)
    with pytest.raises(StreamOrderError):
        ssd.run_stream(iter(_shuffled_requests()))
    # The aborted stream leaves no admission state behind.
    assert ssd.controller._stream is None
    assert ssd.controller._stream_depth is None


def test_bad_on_unordered_rejected():
    ssd = SimulatedSSD(REPLAY_GEOMETRY, TimingParams(), ftl="dloop")
    with pytest.raises(ValueError):
        ssd.run_stream(iter(()), on_unordered="ignore")


def test_normalized_stream_matches_materialized_clamped_trace():
    """``on_unordered='normalize'`` clamps late arrivals up to the
    running max — bit-identical to materializing the same trace with
    ``np.maximum.accumulate`` over the arrivals and replaying it."""
    streamed = _shuffled_requests()
    ssd = SimulatedSSD(REPLAY_GEOMETRY, TimingParams(), ftl="dloop")
    ssd.precondition(0.6)
    end = ssd.run_stream(iter(streamed), on_unordered="normalize")
    fp = ftl_fingerprint(ssd.ftl, end)
    fp.update(engine_fingerprint(ssd.engine))

    materialized = _shuffled_requests()
    arrivals = np.maximum.accumulate([r.arrival_us for r in materialized])
    for request, arrival in zip(materialized, arrivals):
        request.arrival_us = float(arrival)
    ref = SimulatedSSD(REPLAY_GEOMETRY, TimingParams(), ftl="dloop")
    ref.precondition(0.6)
    ref_end = ref.run(materialized)
    ref_fp = ftl_fingerprint(ref.ftl, ref_end)
    ref_fp.update(engine_fingerprint(ref.engine))

    assert fp == ref_fp
    assert ssd.stats.count == ref.stats.count
    assert ssd.stats.mean_response_us() == pytest.approx(
        ref.stats.mean_response_us(), rel=1e-9
    )
