"""FAST hybrid FTL: log blocks and the three merge types."""

import random

import pytest

from repro.flash.address import PageState
from repro.ftl.fast import FastFtl


@pytest.fixture
def ftl(small_geometry, timing):
    return FastFtl(small_geometry, timing, num_log_blocks=4)


def ppb(ftl):
    return ftl.pages_per_block


def test_first_writes_go_to_log_blocks(ftl):
    ftl.write_page(0, 0.0)
    assert ftl.sw is not None  # offset 0 opens an SW log
    ftl.write_page(9, 0.0)  # offset 1 of lbn 1 -> RW log
    assert ftl.current_rw is not None


def test_switch_merge_on_complete_sequential_stream(ftl):
    """A full sequential run becomes the data block with zero copies."""
    p = ppb(ftl)
    for off in range(p):
        ftl.write_page(off, 0.0)  # lbn 0 sequential
    assert ftl.sw is not None
    moves_before = ftl.gc_stats.moved_pages
    ftl.write_page(p, 0.0)  # offset 0 of lbn 1 closes lbn 0's SW log
    assert ftl.fast_stats.switch_merges == 1
    assert ftl.gc_stats.moved_pages == moves_before  # switch merge copies nothing
    assert ftl.data_block[0] != -1


def test_partial_merge_copies_tail(ftl):
    p = ppb(ftl)
    # build a full data block for lbn 0 via switch merge
    for off in range(p):
        ftl.write_page(off, 0.0)
    ftl.write_page(p, 0.0)  # switch merge lbn 0; SW now on lbn 1
    # rewrite only the first 2 pages of lbn 0 -> SW log, then close it
    ftl.write_page(0, 0.0)
    ftl.write_page(1, 0.0)
    ftl.write_page(2 * p, 0.0)  # offset 0 of lbn 2 -> closes lbn 0's partial SW
    assert ftl.fast_stats.partial_merges >= 1
    assert ftl.gc_stats.moved_pages >= p - 2  # the tail was copied
    ftl.verify_integrity()


def test_full_merge_reclaims_rw_log(ftl):
    rng = random.Random(11)
    # random single-page updates at non-zero offsets fill RW logs
    lpns = [lbn * ppb(ftl) + off for lbn in range(6) for off in range(1, ppb(ftl))]
    for i in range(300):
        ftl.write_page(rng.choice(lpns), float(i))
    assert ftl.fast_stats.full_merges > 0
    ftl.verify_integrity()


def test_log_budget_respected(ftl):
    rng = random.Random(12)
    for i in range(500):
        ftl.write_page(rng.randrange(ftl.geometry.num_lpns), float(i))
    assert ftl.log_blocks_in_use() <= ftl.num_log_blocks


def test_reads_find_latest_copy_everywhere(ftl):
    """Latest copy may live in data block, SW log or RW log."""
    p = ppb(ftl)
    for off in range(p):
        ftl.write_page(off, 0.0)
    ftl.write_page(p, 0.0)  # lbn 0 switch-merged to a data block
    ftl.write_page(3, 0.0)  # update offset 3 -> RW log
    ppn = ftl.current_ppn(3)
    assert ftl.array.owner_of(ppn) == 3
    assert ftl.array.state_of(ppn) == PageState.VALID
    end = ftl.read_page(3, 100.0)
    assert end > 100.0


def test_no_mapping_flash_traffic(ftl):
    """FAST's block map lives in SRAM: reads cost exactly one flash read."""
    ftl.write_page(1, 0.0)
    reads_before = ftl.clock.counters.reads
    ftl.read_page(1, 1e6)
    assert ftl.clock.counters.reads == reads_before + 1


def test_sw_log_interrupted_by_random_writes(ftl):
    p = ppb(ftl)
    ftl.write_page(0, 0.0)
    ftl.write_page(1, 0.0)
    ftl.write_page(5, 0.0)  # breaks the sequence -> RW log
    assert ftl.sw is not None and int(ftl.array.block_write_ptr[ftl.sw.block]) == 2
    ftl.write_page(2, 0.0)  # resumes the sequential stream
    assert int(ftl.array.block_write_ptr[ftl.sw.block]) == 3
    ftl.verify_integrity()


def test_data_blocks_hold_single_lbn(ftl):
    rng = random.Random(13)
    for i in range(600):
        ftl.write_page(rng.randrange(ftl.geometry.num_lpns), float(i))
    p = ppb(ftl)
    for lbn, block in enumerate(ftl.data_block):
        if block == -1:
            continue
        for ppn in ftl.array.valid_pages_in_block(int(block)):
            owner = ftl.array.owner_of(ppn)
            assert owner // p == lbn
            assert ppn % p == owner % p  # offset preserved (block mapping)


def test_heavy_random_workload_integrity(ftl):
    rng = random.Random(14)
    for i in range(2000):
        lpn = rng.randrange(ftl.geometry.num_lpns)
        if rng.random() < 0.7:
            ftl.write_page(lpn, float(i))
        else:
            ftl.read_page(lpn, float(i))
    ftl.verify_integrity()
    assert ftl.fast_stats.full_merges > 0


def test_default_log_budget_from_extra_blocks(small_geometry, timing):
    ftl = FastFtl(small_geometry, timing)
    total_extra = small_geometry.num_planes * small_geometry.extra_blocks_per_plane
    assert 2 <= ftl.num_log_blocks <= total_extra


def test_too_few_log_blocks_rejected(small_geometry, timing):
    with pytest.raises(ValueError):
        FastFtl(small_geometry, timing, num_log_blocks=1)
