"""FlashArray NAND state rules: program order, erase discipline, pools."""

import pytest

from repro.flash.address import PageState
from repro.flash.array import FlashArray, FlashStateError


@pytest.fixture
def array(small_geometry):
    return FlashArray(small_geometry)


def first_ppn(array, block):
    return array.codec.block_first_ppn(block)


def test_initial_state_all_free(array):
    assert (array.page_state_np == PageState.FREE).all()
    assert array.utilization() == 0.0
    for plane in range(array.geometry.num_planes):
        assert array.free_block_count(plane) == array.geometry.physical_blocks_per_plane


def test_program_marks_valid_and_tracks_owner(array):
    block = array.allocate_block(0)
    ppn = first_ppn(array, block)
    array.program(ppn, 42)
    assert array.state_of(ppn) == PageState.VALID
    assert array.owner_of(ppn) == 42
    assert array.block_valid[block] == 1


def test_program_requires_allocated_block(array):
    with pytest.raises(FlashStateError):
        array.program(0, 1)  # block 0 still in the free pool


def test_program_enforces_ascending_order(array):
    block = array.allocate_block(0)
    base = first_ppn(array, block)
    array.program(base + 3, 1)  # skipping forward is legal
    with pytest.raises(FlashStateError):
        array.program(base + 1, 2)  # going backwards is not
    array.program(base + 4, 2)


def test_double_program_rejected(array):
    block = array.allocate_block(0)
    ppn = first_ppn(array, block)
    array.program(ppn, 1)
    with pytest.raises(FlashStateError):
        array.program(ppn, 2)


def test_invalidate_transitions_valid_to_invalid(array):
    block = array.allocate_block(0)
    ppn = first_ppn(array, block)
    array.program(ppn, 1)
    array.invalidate(ppn)
    assert array.state_of(ppn) == PageState.INVALID
    assert array.block_valid[block] == 0
    assert array.block_invalid[block] == 1
    with pytest.raises(FlashStateError):
        array.invalidate(ppn)


def test_skip_page_counts_as_invalid(array):
    block = array.allocate_block(0)
    ppn = first_ppn(array, block)
    array.skip_page(ppn)
    assert array.state_of(ppn) == PageState.INVALID
    assert array.block_invalid[block] == 1
    # Skipped page cannot be programmed afterwards.
    with pytest.raises(FlashStateError):
        array.program(ppn, 1)


def test_erase_requires_no_valid_pages(array):
    block = array.allocate_block(0)
    ppn = first_ppn(array, block)
    array.program(ppn, 1)
    with pytest.raises(FlashStateError):
        array.erase(block)
    array.invalidate(ppn)
    array.erase(block)
    assert array.state_of(ppn) == PageState.FREE
    assert array.block_write_ptr[block] == 0
    assert array.block_erase_count[block] == 1


def test_release_requires_erase(array):
    block = array.allocate_block(0)
    array.program(first_ppn(array, block), 1)
    with pytest.raises(FlashStateError):
        array.release_block(block)
    array.invalidate(first_ppn(array, block))
    array.erase(block)
    array.release_block(block)
    assert array.is_block_free(block)


def test_double_release_rejected(array):
    block = array.allocate_block(0)
    array.release_block(block)
    with pytest.raises(FlashStateError):
        array.release_block(block)


def test_pool_exhaustion_raises(array):
    n = array.geometry.physical_blocks_per_plane
    for _ in range(n):
        array.allocate_block(1)
    with pytest.raises(FlashStateError):
        array.allocate_block(1)
    assert array.free_block_count(1) == 0
    # other planes unaffected
    assert array.free_block_count(0) == n


def test_allocate_release_cycle_preserves_pool(array):
    before = array.free_block_count(2)
    block = array.allocate_block(2)
    assert array.free_block_count(2) == before - 1
    array.release_block(block)
    assert array.free_block_count(2) == before


def test_valid_pages_in_block_ascending(array):
    block = array.allocate_block(0)
    base = first_ppn(array, block)
    array.program(base + 0, 10)
    array.program(base + 2, 11)
    array.program(base + 5, 12)
    array.invalidate(base + 2)
    assert list(array.valid_pages_in_block(block)) == [base, base + 5]


def test_block_free_pages_tracks_write_pointer(array):
    block = array.allocate_block(0)
    ppb = array.geometry.pages_per_block
    assert array.block_free_pages(block) == ppb
    array.program(first_ppn(array, block) + 2, 1)  # skips 0,1
    assert array.block_free_pages(block) == ppb - 3


def test_check_consistency_detects_corruption(array):
    block = array.allocate_block(0)
    array.program(first_ppn(array, block), 1)
    array.check_consistency()
    array.block_valid[block] = 5  # corrupt the counter
    with pytest.raises(FlashStateError):
        array.check_consistency()


def test_erase_count_accumulates(array):
    block = array.allocate_block(0)
    for i in range(3):
        array.program(first_ppn(array, block), i)
        array.invalidate(first_ppn(array, block))
        array.erase(block)
    assert array.block_erase_count[block] == 3
