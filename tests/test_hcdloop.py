"""Hot/cold DLOOP variant: dual write frontiers per plane."""

import random

import pytest

from repro.core.dloop import DloopFtl
from repro.core.hcdloop import HotColdDloopFtl


@pytest.fixture
def ftl(small_geometry, timing):
    return HotColdDloopFtl(small_geometry, timing, cmt_entries=64, hot_window=64)


def skewed_load(ftl, n=3000, seed=6, hot_count=40, hot_prob=0.7):
    rng = random.Random(seed)
    hot = list(range(hot_count))
    space = int(ftl.geometry.num_lpns * 0.6)
    for i in range(n):
        lpn = rng.choice(hot) if rng.random() < hot_prob else rng.randrange(space)
        ftl.write_page(lpn, float(i))


def test_first_write_is_cold_rewrite_is_hot(ftl):
    ftl.write_page(5, 0.0)
    assert ftl.cold_writes == 1 and ftl.hot_writes == 0
    ftl.write_page(5, 1.0)
    assert ftl.hot_writes == 1


def test_hot_and_cold_use_distinct_blocks(ftl):
    ftl.write_page(5, 0.0)   # cold
    ftl.write_page(5, 1.0)   # hot
    plane = ftl.plane_of_lpn(5)
    cold_block = ftl.allocators[plane].current_block
    hot_block = ftl.hot_allocators[plane].current_block
    assert cold_block is not None and hot_block is not None
    assert cold_block != hot_block


def test_window_expiry_demotes_to_cold(small_geometry, timing):
    ftl = HotColdDloopFtl(small_geometry, timing, cmt_entries=64, hot_window=4)
    ftl.write_page(1, 0.0)
    for lpn in range(10, 20):  # push lpn 1 out of the window
        ftl.write_page(lpn, 0.0)
    cold_before = ftl.cold_writes
    ftl.write_page(1, 99.0)
    assert ftl.cold_writes == cold_before + 1


def test_striping_preserved(ftl):
    skewed_load(ftl, n=400)
    for lpn in ftl.mapped_lpns():
        if ftl.gc_stats.emergency_passes:
            break
        plane = ftl.codec.ppn_to_plane(ftl.current_ppn(int(lpn)))
        assert plane == int(lpn) % ftl.num_planes


def test_reduces_gc_work_on_skewed_load(small_geometry, timing):
    plain = DloopFtl(small_geometry, timing, cmt_entries=64)
    split = HotColdDloopFtl(small_geometry, timing, cmt_entries=64, hot_window=64)
    skewed_load(plain, n=3500)
    skewed_load(split, n=3500)
    assert split.gc_stats.moved_pages < plain.gc_stats.moved_pages
    assert split.gc_stats.wasted_pages <= plain.gc_stats.wasted_pages
    split.verify_integrity()
    plain.verify_integrity()


def test_integrity_under_churn(ftl):
    skewed_load(ftl, n=4000, seed=7)
    ftl.verify_integrity()
    assert 0.0 <= ftl.hot_fraction() <= 1.0


def test_window_validation(small_geometry, timing):
    with pytest.raises(ValueError):
        HotColdDloopFtl(small_geometry, timing, hot_window=0)


def test_registry(small_geometry):
    from repro.ftl.registry import create_ftl

    assert isinstance(create_ftl("dloop-hc", small_geometry), HotColdDloopFtl)
