"""Superblock FTL: local page mapping, budgeted block sets, local GC."""

import random

import pytest

from repro.ftl.superblock import SuperblockFtl


@pytest.fixture
def ftl(small_geometry, timing):
    return SuperblockFtl(small_geometry, timing, superblock_size=4, extra_blocks_per_superblock=2)


def test_superblock_of_groups_adjacent_blocks(ftl):
    pages = ftl.pages_per_superblock
    assert pages == 4 * ftl.pages_per_block
    assert ftl.superblock_of(0) == 0
    assert ftl.superblock_of(pages - 1) == 0
    assert ftl.superblock_of(pages) == 1


def test_writes_stay_within_superblock_budget(ftl):
    rng = random.Random(81)
    pages = ftl.pages_per_superblock
    for i in range(1500):
        ftl.write_page(rng.randrange(pages), float(i))  # superblock 0 only
    assert ftl.blocks_owned(0) <= ftl.block_budget + 1  # soft budget
    ftl.verify_integrity()


def test_no_merges_only_local_gc(ftl):
    """Unlike log-block hybrids, reclamation never rebuilds whole lbns."""
    rng = random.Random(82)
    pages = ftl.pages_per_superblock
    for i in range(1500):
        ftl.write_page(rng.randrange(pages), float(i))
    assert ftl.sb_stats.local_gcs > 0
    # moved pages per GC bounded by one block's pages
    assert ftl.gc_stats.moved_pages <= ftl.sb_stats.local_gcs * ftl.pages_per_block


def test_page_mapping_within_superblock(ftl):
    """Updates land at arbitrary offsets — no in-place constraint."""
    ftl.write_page(5, 0.0)
    first = ftl.current_ppn(5)
    ftl.write_page(5, 1.0)
    second = ftl.current_ppn(5)
    assert second != first
    from repro.flash.address import PageState

    assert ftl.array.state_of(first) == PageState.INVALID


def test_superblocks_are_independent(ftl):
    pages = ftl.pages_per_superblock
    rng = random.Random(83)
    for i in range(600):
        ftl.write_page(rng.randrange(pages), float(i))  # stress sb 0
    ftl.write_page(pages + 3, 0.0)  # one write to sb 1
    assert ftl.blocks_owned(1) == 1
    ftl.verify_integrity()


def test_dead_block_reclaim_is_free(ftl):
    """A fully-invalidated member block erases without copies."""
    ppb = ftl.pages_per_block
    # fill one block's worth, then rewrite everything: old block dies
    for lpn in range(ppb):
        ftl.write_page(lpn, 0.0)
    moves_before = ftl.gc_stats.moved_pages
    for _ in range(8):  # push the budget until the dead block is seen
        for lpn in range(ppb):
            ftl.write_page(lpn, 1.0)
    assert ftl.sb_stats.local_gcs > 0
    ftl.verify_integrity()


def test_integrity_mixed_load(ftl):
    rng = random.Random(84)
    for i in range(3000):
        lpn = rng.randrange(int(ftl.geometry.num_lpns * 0.7))
        if rng.random() < 0.6:
            ftl.write_page(lpn, float(i))
        else:
            ftl.read_page(lpn, float(i))
    ftl.verify_integrity()


def test_bulk_fill(ftl):
    count = int(ftl.geometry.num_lpns * 0.5)
    ftl.bulk_fill(count)
    assert len(ftl.mapped_lpns()) == count
    ftl.verify_integrity()


def test_map_journal_used(ftl):
    rng = random.Random(85)
    for i in range(1200):
        ftl.write_page(rng.randrange(ftl.pages_per_superblock), float(i))
    assert ftl.map_journal.map_writes > 0


def test_parameter_validation(small_geometry, timing):
    with pytest.raises(ValueError):
        SuperblockFtl(small_geometry, timing, superblock_size=0)
    with pytest.raises(ValueError):
        SuperblockFtl(small_geometry, timing, extra_blocks_per_superblock=0)


def test_registry(small_geometry):
    from repro.ftl.registry import create_ftl

    assert isinstance(create_ftl("superblock", small_geometry), SuperblockFtl)
