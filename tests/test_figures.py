"""Figure rendering from sweep results."""

import numpy as np
import pytest

from repro.experiments.figures import (
    detect_axis,
    figure_series,
    render_figure,
    render_table,
    summarize_wins,
)
from repro.experiments.runner import SimulationResult
from repro.metrics.wear import WearStats


def make_result(trace, ftl, mean_ms, **extras):
    return SimulationResult(
        ftl=ftl,
        trace=trace,
        mean_response_ms=mean_ms,
        steady_response_ms=mean_ms,
        read_response_ms=mean_ms,
        write_response_ms=mean_ms,
        p99_response_ms=mean_ms * 3,
        sdrpp=1.0,
        plane_ops=np.zeros(4, dtype=np.int64),
        num_requests=100,
        host_pages_written=100,
        host_pages_read=100,
        gc_invocations=0,
        gc_passes=0,
        gc_moved_pages=0,
        gc_copyback_moves=0,
        gc_controller_moves=0,
        gc_wasted_pages=0,
        gc_translation_updates=0,
        erases=0,
        copybacks=0,
        flash_reads=0,
        flash_programs=100,
        cmt_hit_ratio=None,
        wear=WearStats(0, 0, 0.0, 0.0),
        sim_duration_s=1.0,
        wall_time_s=0.1,
        extras=dict(extras),
    )


def capacity_grid():
    results = []
    for cap in (2, 8):
        for ftl, mean in (("dloop", 1.0 * cap), ("fast", 10.0 * cap)):
            results.append(make_result("t1", ftl, mean, capacity_gb=cap))
    return results


def test_detect_axis():
    assert detect_axis(capacity_grid()) == "capacity_gb"
    with pytest.raises(ValueError):
        detect_axis([make_result("t", "dloop", 1.0)])


def test_figure_series_shape():
    series = figure_series(capacity_grid())
    assert series == {"t1": {"dloop": [2.0, 8.0], "fast": [20.0, 80.0]}}


def test_render_figure_contains_sparklines():
    text = render_figure(capacity_grid(), title="demo")
    assert "demo" in text
    assert "[t1] mean_response_ms vs capacity_gb" in text
    assert "dloop" in text and "fast" in text
    assert "x: [2, 8]" in text


def test_render_table_groups_cells():
    text = render_table(capacity_grid(), title="numbers")
    assert "capacity_gb" in text.splitlines()[1]
    assert text.count("dloop") == 2


def test_summarize_wins():
    summary = summarize_wins(capacity_grid(), winner="dloop")
    assert summary == {"winner": "dloop", "wins": 2, "cells": 2}
    summary = summarize_wins(capacity_grid(), winner="fast")
    assert summary["wins"] == 0


def test_write_amplification_property():
    r = make_result("t", "dloop", 1.0, capacity_gb=2)
    assert r.write_amplification == pytest.approx(1.0)
