"""DL210 address-domain / time-unit dataflow rule."""

import textwrap
from pathlib import Path

from repro.lint import run_lint
from repro.lint.dataflow import ADDRESS_DOMAINS, incompatible, infer_domain

FIXTURE = Path(__file__).parent / "fixtures" / "dataflow_fixture.py"

#: (line, col, code) for every violation planted in the fixture.
EXPECTED_FIXTURE_FINDINGS = [
    (10, 12, "DL210"),  # lpn + ppn arithmetic
    (14, 12, "DL210"),  # lpn < ppn comparison
    (18, 5, "DL210"),   # lpn value assigned to a plane name
    (23, 12, "DL210"),  # us + ms arithmetic
    (27, 12, "DL210"),  # lpn passed as channel= keyword
    (31, 12, "DL210"),  # channel passed into a plane parameter
    (36, 5, "DL210"),   # annotated ppn assigned to an lpn name
    (41, 1, "DL210"),   # unknown domain in a # dl: domain(...) annotation
]


def lint_module(tmp_path, source):
    # DL210 only applies inside simulator packages; place the snippet
    # under a repro/ directory so the module resolves into one.
    path = tmp_path / "repro" / "flash" / "snippet.py"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return run_lint([str(path)], select=["DL210"])


class TestInference:
    def test_suffix_and_exact_names(self):
        assert infer_domain("lpn") == "lpn"
        assert infer_domain("victim_ppn") == "ppn"
        assert infer_domain("start_us") == "us"
        assert infer_domain("budget_ms") == "ms"
        assert infer_domain("dst_plane") == "plane"

    def test_ratio_names_are_untyped(self):
        # pages_per_block is a ratio, not a page count in either domain.
        assert infer_domain("pages_per_block") is None
        assert infer_domain("planeswalker") is None
        assert infer_domain("total") is None

    def test_incompatibility(self):
        assert incompatible("lpn", "ppn")
        assert incompatible("us", "ms")
        assert not incompatible("lpn", "lpn")
        assert not incompatible("lpn", None)
        assert not incompatible("lpn", "any")
        # page_offset may be added to any address, but not compared.
        assert not incompatible("ppn", "page_offset", arithmetic=True)
        assert incompatible("ppn", "page_offset")

    def test_address_domains_are_known(self):
        assert "lpn" in ADDRESS_DOMAINS and "ppn" in ADDRESS_DOMAINS


class TestFixture:
    def test_fixture_findings_exactly(self):
        result = run_lint([str(FIXTURE)])
        got = [(f.line, f.col, f.code) for f in result.findings]
        assert got == EXPECTED_FIXTURE_FINDINGS
        assert result.exit_code == 1


class TestCleanPatterns:
    def test_derivations_and_conversions(self, tmp_path):
        result = lint_module(tmp_path, """\
            def derive(pbn, pages_per_block, page_offset, total_us):
                ppn = pbn * pages_per_block + page_offset
                total_ms = total_us / 1000.0
                next_ppn = ppn + 1
                return ppn, total_ms, next_ppn
        """)
        assert result.findings == []

    def test_same_domain_flows(self, tmp_path):
        result = lint_module(tmp_path, """\
            def same(lpn, other_lpn, start_us, end_us):
                if lpn < other_lpn:
                    lpn = other_lpn
                return end_us - start_us
        """)
        assert result.findings == []

    def test_any_annotation_silences(self, tmp_path):
        result = lint_module(tmp_path, """\
            def generic(lpn, ppn):
                owner = lpn  # dl: domain(owner=any)
                owner = ppn
                return owner
        """)
        assert result.findings == []

    def test_non_simulator_packages_are_ignored(self, tmp_path):
        # Analysis/plotting code (repro.experiments, repro.obs, ...)
        # shuffles addresses freely; DL210 stays out of it.
        path = tmp_path / "repro" / "experiments" / "snippet.py"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("def f(lpn, ppn):\n    return lpn + ppn\n")
        result = run_lint([str(path)], select=["DL210"])
        assert result.findings == []


class TestAnnotations:
    def test_annotation_overrides_inference(self, tmp_path):
        result = lint_module(tmp_path, """\
            def convert(raw):
                value = raw  # dl: domain(value=ppn)
                plane = value
                return plane
        """)
        assert len(result.findings) == 1
        assert "ppn" in result.findings[0].message

    def test_pragma_suppression(self, tmp_path):
        result = lint_module(tmp_path, """\
            def mix(lpn, ppn):
                return lpn + ppn  # dl: disable=DL210
        """)
        assert result.findings == []
        assert result.suppressed == 1

    def test_dict_payload_mismatch(self, tmp_path):
        # The TraceBus payload pattern: {"lpn": ppn} is a swapped key.
        result = lint_module(tmp_path, """\
            def payload(ppn):
                return {"lpn": ppn}
        """)
        assert len(result.findings) == 1
