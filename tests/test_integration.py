"""Cross-FTL integration: identical workloads, equivalent logical state."""

import random

import pytest

from repro.controller.device import SimulatedSSD
from repro.flash.address import PageState
from repro.sim.request import IoOp, IoRequest

ALL_FTLS = ("dloop", "dloop-nocb", "dloop-hot", "dftl", "fast", "pagemap")


def mixed_workload(geometry, n=1200, seed=99, footprint=0.7):
    rng = random.Random(seed)
    space = int(geometry.num_lpns * footprint)
    requests = []
    t = 0.0
    for _ in range(n):
        t += rng.expovariate(1 / 500.0)
        lpn = rng.randrange(space)
        count = min(rng.choice((1, 1, 2, 4)), geometry.num_lpns - lpn)
        op = IoOp.WRITE if rng.random() < 0.6 else IoOp.READ
        requests.append(IoRequest(t, lpn, count, op))
    return requests


@pytest.mark.parametrize("ftl", ALL_FTLS)
def test_every_ftl_survives_mixed_workload(small_geometry, ftl):
    ssd = SimulatedSSD(small_geometry, ftl=ftl)
    ssd.run(mixed_workload(small_geometry))
    ssd.verify()
    assert ssd.stats.count == 1200
    assert ssd.mean_response_ms() > 0


def test_all_ftls_agree_on_final_logical_state(small_geometry):
    """Same trace -> same set of mapped LPNs, each holding its own data."""
    workload = mixed_workload(small_geometry)
    mapped_sets = {}
    for ftl in ALL_FTLS:
        ssd = SimulatedSSD(small_geometry, ftl=ftl)
        ssd.run(list(workload))
        table = ssd.ftl.page_table
        mapped = frozenset(int(lpn) for lpn in ssd.ftl.mapped_lpns())
        mapped_sets[ftl] = mapped
        for lpn in mapped:
            ppn = int(table[lpn])
            assert ssd.ftl.array.owner_of(ppn) == lpn
            assert ssd.ftl.array.state_of(ppn) == PageState.VALID
    assert len(set(mapped_sets.values())) == 1, "FTLs disagree on written LPNs"


def test_dloop_outperforms_dftl_and_fast_under_update_pressure(small_geometry):
    """The paper's headline ordering on a GC-heavy random-update load."""
    means = {}
    for ftl in ("dloop", "dftl", "fast"):
        ssd = SimulatedSSD(small_geometry, ftl=ftl)
        ssd.precondition(0.65)
        ssd.run(mixed_workload(small_geometry, n=2500, seed=7, footprint=0.6))
        means[ftl] = ssd.mean_response_ms()
    assert means["dloop"] < means["dftl"]
    assert means["dloop"] < means["fast"]


def test_dloop_spreads_requests_more_evenly_than_dftl(small_geometry):
    """DLOOP's striping avoids DFTL's plane-0 mapping hotspot.

    (FAST's round-robin log allocation is competitive at this tiny
    4-plane scale; the full 32-plane benchmark grid checks the paper's
    complete SDRPP ordering.)
    """
    from repro.metrics.sdrpp import sdrpp

    values = {}
    for ftl in ("dloop", "dftl", "fast"):
        ssd = SimulatedSSD(small_geometry, ftl=ftl)
        ssd.precondition(0.7)
        ssd.run(mixed_workload(small_geometry, n=2500, seed=8))
        values[ftl] = sdrpp(ssd.counters)
    assert values["dloop"] < values["dftl"]


def test_dloop_gc_frees_bus_for_reads(small_geometry):
    """Channel busy time during GC-heavy load: DLOOP << DLOOP-no-copyback."""
    busy = {}
    for ftl in ("dloop", "dloop-nocb"):
        ssd = SimulatedSSD(small_geometry, ftl=ftl)
        ssd.precondition(0.7)
        ssd.run(mixed_workload(small_geometry, n=2500, seed=9))
        busy[ftl] = float(sum(ssd.counters.channel_busy_us))
    assert busy["dloop"] < busy["dloop-nocb"]


def test_wear_spread_reasonable_for_dloop(small_geometry):
    from repro.metrics.wear import wear_stats

    ssd = SimulatedSSD(small_geometry, ftl="dloop")
    ssd.precondition(0.7)
    ssd.run(mixed_workload(small_geometry, n=3000, seed=10))
    stats = wear_stats(ssd.ftl.array)
    assert stats.total_erases > 0
    assert stats.cv < 3.0  # no block wears out catastrophically faster


def test_read_only_workload_never_gcs(small_geometry):
    ssd = SimulatedSSD(small_geometry, ftl="dloop")
    ssd.precondition(0.6)
    reads = [IoRequest(float(i * 100), i % small_geometry.num_lpns, 1, IoOp.READ) for i in range(500)]
    ssd.run(reads)
    assert ssd.ftl.gc_stats.passes == 0
    assert ssd.counters.erases == 0
