"""Conformance engine: probes against hand-built event streams, the
scenario matrix, ranked reports, and the no-perturbation guarantee."""

import dataclasses
import json

import pytest

from repro.conformance.matrix import Scenario, ScenarioMatrix, ftl_supports_faults
from repro.conformance.report import build_report, render_report, report_json
from repro.conformance.rules import (
    RULE_ORDER,
    AlignedSequentialityProbe,
    DeathTimeGroupingProbe,
    LocalityProbe,
    RequestScaleParallelismProbe,
    default_probes,
)
from repro.conformance.runner import ScenarioOutcome, run_matrix
from repro.conformance.sketches import KmvDistinctCounter, splitmix64
from repro.obs.tracebus import BUS, TraceBus, TraceEvent


@pytest.fixture(autouse=True)
def clean_global_bus():
    yield
    BUS.clear()


def ev(category, name, ts=0.0, dur=0.0, **args):
    return TraceEvent(category, name, ts, dur, args or None, None, "i")


def io_begin(lpn, pages, op="write", ts=0.0):
    return ev("host", "io_begin", ts, lpn=lpn, pages=pages, op=op)


def io_dispatch(lpn, pages, op="write", ts=0.0):
    return ev("host", "io_dispatch", ts, lpn=lpn, pages=pages, op=op, span_us=0.0)


def flash(name, ts, dur, plane, channel=0):
    return TraceEvent("flash", name, ts, dur,
                      {"plane": plane, "channel": channel}, f"plane:{plane}", "X")


# ---- sketches --------------------------------------------------------------


def test_splitmix64_is_fixed_function():
    # Known-answer check: the mix must never drift (report determinism
    # depends on it).
    assert splitmix64(0) == 0xE220A8397B1DCDAF
    assert splitmix64(1) != splitmix64(2)
    assert 0 <= splitmix64(2**64 - 1) < 2**64


def test_kmv_exact_below_k():
    sketch = KmvDistinctCounter(k=64)
    for i in range(50):
        sketch.add(i)
        sketch.add(i)  # duplicates must not count
    assert sketch.exact
    assert sketch.estimate() == 50.0


def test_kmv_estimate_above_k_within_tolerance():
    sketch = KmvDistinctCounter(k=256)
    for i in range(10_000):
        sketch.add(i)
    assert not sketch.exact
    assert sketch.estimate() == pytest.approx(10_000, rel=0.15)
    # Deterministic: a second pass over the same stream agrees exactly.
    again = KmvDistinctCounter(k=256)
    for i in range(10_000):
        again.add(i)
    assert sketch.estimate() == again.estimate()


def test_kmv_rejects_tiny_k():
    with pytest.raises(ValueError):
        KmvDistinctCounter(k=4)


# ---- rule 1: request-scale parallelism ------------------------------------


def test_parallelism_probe_scores_overlapping_planes():
    probe = RequestScaleParallelismProbe()
    # Conformant: two programs on different planes overlap in time.
    probe(io_begin(0, 4))
    probe(flash("program", 10.0, 20.0, plane=0))
    probe(flash("program", 12.0, 20.0, plane=1))
    probe(io_dispatch(0, 4))
    result = probe.result()
    assert result.exercised
    assert result.score == 1.0
    assert result.details["evaluable_requests"] == 1


def test_parallelism_probe_flags_serialized_request():
    probe = RequestScaleParallelismProbe()
    # Violating: distinct planes but strictly sequential in time.
    probe(io_begin(0, 4))
    probe(flash("program", 10.0, 20.0, plane=0))
    probe(flash("program", 30.0, 20.0, plane=1))
    probe(io_dispatch(0, 4))
    # Violating: overlap in time but a single plane.
    probe(io_begin(8, 4))
    probe(flash("program", 50.0, 20.0, plane=2))
    probe(flash("program", 55.0, 20.0, plane=2))
    probe(io_dispatch(8, 4))
    result = probe.result()
    assert result.score == 0.0
    assert result.details["evaluable_requests"] == 2


def test_parallelism_probe_ignores_single_page_requests():
    probe = RequestScaleParallelismProbe()
    probe(io_begin(0, 1))
    probe(flash("program", 0.0, 20.0, plane=0))
    probe(flash("program", 5.0, 20.0, plane=1))
    probe(io_dispatch(0, 1))
    result = probe.result()
    assert not result.exercised
    assert result.score is None


def test_parallelism_probe_overlap_detection_is_order_robust():
    probe = RequestScaleParallelismProbe()
    # A long early op on plane 0 that a later plane-1 op tucks inside.
    probe(io_begin(0, 3))
    probe(flash("read", 0.0, 100.0, plane=0))
    probe(flash("read", 40.0, 10.0, plane=1))
    probe(io_dispatch(0, 3))
    assert probe.result().score == 1.0


# ---- rule 2: locality ------------------------------------------------------


def test_locality_probe_forgives_compulsory_misses():
    probe = LocalityProbe()
    # Every miss touches a fresh LPN (cold start), then the cache hits.
    for lpn in range(100):
        probe(ev("cmt", "miss", lpn=lpn))
    for _ in range(50):
        probe(ev("cmt", "hit", lpn=1))
    result = probe.result()
    assert result.details["mode"] == "mapping-cache"
    assert result.score == 1.0


def test_locality_probe_flags_thrashing():
    probe = LocalityProbe()
    # 10 distinct LPNs missed 100x each: 990 capacity misses, 10 hits.
    for _ in range(100):
        for lpn in range(10):
            probe(ev("cmt", "miss", lpn=lpn))
    for _ in range(10):
        probe(ev("cmt", "hit", lpn=0))
    result = probe.result()
    assert result.score < 0.05


def test_locality_probe_host_fallback():
    conformant = LocalityProbe(window=64)
    for _ in range(20):
        for lpn in range(8):  # tight reuse loop inside the window
            conformant(io_begin(lpn, 1, op="read"))
    good = conformant.result()
    assert good.details["mode"] == "host-reuse"
    assert good.score == 1.0

    violating = LocalityProbe(window=64)
    for lpn in range(500):  # pure scan: no reuse at all
        violating(io_begin(lpn, 1, op="read"))
    assert violating.result().score == 0.0


def test_locality_probe_idle_not_exercised():
    result = LocalityProbe().result()
    assert not result.exercised
    assert result.score is None


# ---- rule 3: aligned sequentiality ----------------------------------------


def test_alignment_probe_rewards_sequential_aligned_writes():
    probe = AlignedSequentialityProbe(pages_per_block=16)
    lpn = 0
    for _ in range(8):  # one aligned start, then perfect continuation
        probe(io_begin(lpn, 4))
        lpn += 4
    result = probe.result()
    assert result.score == 1.0
    assert result.details["continuations"] == 7
    assert result.details["aligned_run_starts"] == 1


def test_alignment_probe_flags_unaligned_scatter():
    probe = AlignedSequentialityProbe(pages_per_block=16)
    for lpn in (3, 21, 9, 37, 55):  # all unaligned fresh runs
        probe(io_begin(lpn, 2))
    result = probe.result()
    assert result.score == 0.0
    assert result.details["unaligned_run_starts"] == 5


def test_alignment_probe_counts_straddles_and_ignores_reads():
    probe = AlignedSequentialityProbe(pages_per_block=16)
    probe(io_begin(14, 4))           # crosses the block boundary at 16
    probe(io_begin(100, 8, op="read"))  # reads never score
    result = probe.result()
    assert result.details["writes"] == 1
    assert result.details["block_straddles"] == 1


def test_alignment_probe_validates_pages_per_block():
    with pytest.raises(ValueError):
        AlignedSequentialityProbe(pages_per_block=0)


# ---- rule 4: death-time grouping ------------------------------------------


def victim(valid, invalid, plane=0, block=7, emergency=False):
    return ev("gc", "victim_selected", plane=plane, victim=block,
              valid=valid, invalid=invalid, emergency=emergency)


def test_death_time_probe_rewards_dead_victims():
    probe = DeathTimeGroupingProbe()
    for _ in range(10):
        probe(victim(valid=0, invalid=16))
    result = probe.result()
    assert result.score == 1.0
    assert result.details["dead_victims"] == 10


def test_death_time_probe_flags_live_page_scatter():
    probe = DeathTimeGroupingProbe()
    for _ in range(10):
        probe(victim(valid=12, invalid=4))
    result = probe.result()
    assert result.score == pytest.approx(0.25)
    assert result.details["worst_victim"]["live_fraction"] == pytest.approx(0.75)


def test_death_time_probe_not_exercised_without_gc():
    result = DeathTimeGroupingProbe().result()
    assert not result.exercised
    assert result.score is None


# ---- probe lifecycle -------------------------------------------------------


def test_probe_attach_detach_roundtrip():
    bus = TraceBus()
    probe = DeathTimeGroupingProbe()
    probe.attach(bus)
    assert bus.enabled
    with pytest.raises(RuntimeError):
        probe.attach(bus)
    bus.emit("gc", "victim_selected", 0.0, 0.0,
             {"plane": 0, "victim": 1, "valid": 0, "invalid": 8,
              "emergency": False}, None, "i")
    probe.detach()
    assert not bus.enabled
    assert probe.result().details["victims"] == 1


def test_default_probes_cover_rule_order(small_geometry):
    probes = default_probes(small_geometry)
    assert [p.rule for p in probes] == list(RULE_ORDER)
    results = [p.result() for p in probes]
    assert all(r.score is None and not r.exercised for r in results)
    for r in results:
        json.dumps(r.as_dict())


# ---- scenario matrix -------------------------------------------------------


def test_matrix_expansion_is_deterministic_and_unique():
    matrix = ScenarioMatrix(workloads=("financial1", "tpcc"),
                            ftls=("dloop", "dftl"),
                            queue_depths=(None, 8))
    first = matrix.expand()
    second = matrix.expand()
    assert first == second
    ids = [s.scenario_id for s in first]
    assert len(ids) == len(set(ids)) == 8
    assert all(s.seed > 0 for s in first)


def test_matrix_seed_stable_when_axis_grows():
    base = ScenarioMatrix(workloads=("financial1",), ftls=("dloop",))
    grown = dataclasses.replace(base, workloads=("financial1", "tpcc"),
                                ftls=("dloop", "fast"))
    base_seeds = {s.scenario_id: s.seed for s in base.expand()}
    grown_seeds = {s.scenario_id: s.seed for s in grown.expand()}
    for sid, seed in base_seeds.items():
        assert grown_seeds[sid] == seed  # existing cells keep their seeds


def test_matrix_skips_faults_for_unsupported_ftls():
    assert ftl_supports_faults("dloop")
    assert not ftl_supports_faults("bast")
    matrix = ScenarioMatrix(workloads=("financial1",),
                            ftls=("dloop", "bast"),
                            fault_plans=("none", "moderate"))
    scenarios = matrix.expand()
    plans = {(s.ftl, s.fault_plan) for s in scenarios}
    assert ("dloop", "moderate") in plans
    assert ("bast", "moderate") not in plans
    assert ("bast", "none") in plans


def test_matrix_rejects_unknown_fault_plan():
    with pytest.raises(ValueError):
        ScenarioMatrix(fault_plans=("catastrophic",)).expand()


def test_scenario_builders(small_geometry):
    scenario = ScenarioMatrix(workloads=("tpcc",), ftls=("dftl",)).expand()[0]
    spec = scenario.workload_spec()
    assert spec.name == "tpcc"
    assert spec.seed == scenario.seed
    config = scenario.config()
    assert config.ftl == "dftl"
    assert config.geometry.capacity_bytes == pytest.approx(
        scenario.capacity_mb * 1024 * 1024, rel=0.1)
    assert scenario.fault_config() is None
    faulty = dataclasses.replace(scenario, fault_plan="moderate")
    assert faulty.fault_config().seed == scenario.seed


# ---- end-to-end: runner, report, determinism -------------------------------


SMALL = ScenarioMatrix(workloads=("financial1",), ftls=("dloop", "fast"),
                       num_requests=300, capacities_mb=(8,))


def test_run_matrix_produces_scored_outcomes():
    outcomes = run_matrix(SMALL, processes=1)
    assert [o.scenario.ftl for o in outcomes] == ["dloop", "fast"]
    for outcome in outcomes:
        assert set(outcome.rules) == set(RULE_ORDER)
        parallel = outcome.rules["request_scale_parallelism"]
        assert parallel["exercised"]
        json.dumps(outcome.as_dict())
    # DLOOP's plane striping must beat FAST's serialized log appends.
    dloop, fast = outcomes
    assert (dloop.rules["request_scale_parallelism"]["score"]
            > fast.rules["request_scale_parallelism"]["score"])


def test_report_ranked_and_byte_deterministic():
    first = build_report(run_matrix(SMALL, processes=1), SMALL)
    second = build_report(run_matrix(SMALL, processes=1), SMALL)
    assert report_json(first) == report_json(second)  # byte-identical
    assert first["ranking"][0] == "dloop"
    assert first["ftls"]["dloop"]["rank"] == 1
    rendered = render_report(first)
    assert "dloop" in rendered and "overall" in rendered


def test_report_handles_unexercised_rules():
    scenario = SMALL.expand()[0]
    outcome = ScenarioOutcome(
        scenario=scenario,
        rules={rule: {"score": None, "exercised": False, "details": {}}
               for rule in RULE_ORDER},
        metrics={},
    )
    report = build_report([outcome], SMALL)
    entry = report["ftls"]["dloop"]
    assert entry["overall"] is None
    assert report["ranking"][-1] == "dloop"  # unscored sinks to the bottom
    render_report(report)  # renders without raising


def test_probes_leave_fingerprint_bit_identical(small_geometry):
    from repro.controller.device import SimulatedSSD
    from repro.perf.fingerprint import ftl_fingerprint
    from repro.traces.stream import io_requests
    from repro.traces.stream import stream_workload
    from repro.traces.synthetic import make_workload

    spec = make_workload("financial1", num_requests=400,
                         footprint_bytes=small_geometry.capacity_bytes,
                         seed=11)

    def run(with_probes):
        ssd = SimulatedSSD(small_geometry, ftl="dloop")
        ssd.precondition(0.8)
        probes = default_probes(small_geometry) if with_probes else []
        for p in probes:
            p.attach()
        try:
            end = ssd.run_stream(io_requests(stream_workload(spec), small_geometry))
        finally:
            for p in probes:
                p.detach()
        if with_probes:
            # The run must also have given the probes real material.
            assert any(p.result().exercised for p in probes)
        return ftl_fingerprint(ssd.ftl, end)

    assert run(with_probes=True) == run(with_probes=False)


def test_run_workload_conformance_extras(small_geometry):
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import run_workload
    from repro.traces.synthetic import make_workload

    spec = make_workload("tpcc", num_requests=300,
                         footprint_bytes=small_geometry.capacity_bytes,
                         seed=3)
    config = ExperimentConfig(geometry=small_geometry, ftl="dloop",
                              precondition_fill=0.7)
    result = run_workload(spec, config, stream=True, conformance=True)
    conformance = result.extras["conformance"]
    assert set(conformance) == set(RULE_ORDER)
    assert conformance["request_scale_parallelism"]["exercised"]
    assert BUS.subscriber_count == 0  # probes detached afterwards


def test_cli_conform_smoke(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "report.json"
    code = main([
        "conform", "--workloads", "financial1", "--ftls", "dloop", "dftl",
        "--requests", "300", "--capacities-mb", "8", "--processes", "1",
        "--json", str(out),
    ])
    assert code == 0
    printed = capsys.readouterr().out
    assert "Contract conformance" in printed
    payload = json.loads(out.read_text())
    assert payload["schema"].startswith("repro-conformance-report")
    assert set(payload["ftls"]) == {"dloop", "dftl"}
