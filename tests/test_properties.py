"""Property-based tests (hypothesis) on core structures and invariants."""

import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.flash.address import AddressCodec
from repro.flash.array import FlashArray
from repro.flash.geometry import SSDGeometry
from repro.flash.timekeeper import FlashTimekeeper
from repro.flash.timing import TimingParams
from repro.ftl.allocator import PlaneAllocator
from repro.ftl.cmt import CachedMappingTable
from repro.ftl.registry import create_ftl

TINY = SSDGeometry(
    channels=2,
    packages_per_channel=1,
    chips_per_package=1,
    dies_per_chip=1,
    planes_per_die=2,
    blocks_per_plane=8,
    pages_per_block=4,
    page_size=64,
    extra_blocks_percent=50.0,
)


# ---- address codec -----------------------------------------------------------


@given(
    plane=st.integers(0, TINY.num_planes - 1),
    block=st.integers(0, TINY.physical_blocks_per_plane - 1),
    page=st.integers(0, TINY.pages_per_block - 1),
)
def test_codec_round_trip(plane, block, page):
    codec = AddressCodec(TINY)
    ppn = codec.make_ppn(plane, block, page)
    assert codec.ppn_to_plane(ppn) == plane
    assert codec.ppn_to_page(ppn) == page
    assert codec.ppn_to_block(ppn) == codec.make_block(plane, block)
    assert codec.page_parity(ppn) == page % 2


# ---- CMT ----------------------------------------------------------------------


@given(
    capacity=st.integers(1, 16),
    ops=st.lists(st.tuples(st.integers(0, 40), st.booleans()), max_size=200),
)
def test_cmt_never_overflows_and_stays_consistent(capacity, ops):
    cmt = CachedMappingTable(capacity)
    for lpn, dirty in ops:
        if cmt.touch(lpn):
            if dirty:
                cmt.mark_dirty(lpn)
        else:
            cmt.insert(lpn, dirty=dirty)
        assert len(cmt) <= capacity
        assert lpn in cmt  # just-accessed entry is resident
    # every cached lpn answers is_dirty without error
    for lpn in cmt.cached_lpns():
        cmt.is_dirty(lpn)


@given(ops=st.lists(st.integers(0, 30), min_size=1, max_size=100))
def test_cmt_hits_plus_misses_equals_touches(ops):
    cmt = CachedMappingTable(8)
    for lpn in ops:
        if not cmt.touch(lpn):
            cmt.insert(lpn)
    assert cmt.stats.hits + cmt.stats.misses == len(ops)


# ---- allocator parity ------------------------------------------------------------


@given(parities=st.lists(st.integers(0, 1), min_size=1, max_size=20))
def test_allocate_with_parity_always_honours_parity(parities):
    # max 20: worst-case parity skipping fits one plane's pool
    array = FlashArray(TINY)
    alloc = PlaneAllocator(0, array)
    for i, parity in enumerate(parities):
        ppn, _skipped = alloc.allocate_with_parity(i, parity)
        assert array.codec.page_parity(ppn) == parity


@given(parities=st.lists(st.integers(0, 1), min_size=1, max_size=20))
def test_parity_waste_bounded_by_moves(parities):
    # max 20 moves: worst-case 2 slots per move fits one plane's pool
    array = FlashArray(TINY)
    alloc = PlaneAllocator(0, array)
    total_skips = 0
    for i, parity in enumerate(parities):
        _, skipped = alloc.allocate_with_parity(i, parity)
        total_skips += skipped
    assert total_skips <= 2 * len(parities)


# ---- timekeeper ------------------------------------------------------------------


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["read", "program", "erase", "copyback"]), st.integers(0, TINY.num_planes - 1)),
        max_size=60,
    )
)
def test_resource_timelines_monotone(ops):
    clock = FlashTimekeeper(TINY, TimingParams())
    t = 0.0
    for op, plane in ops:
        end = getattr(
            clock,
            {"read": "read_page", "program": "program_page", "erase": "erase_block", "copyback": "copy_back"}[op],
        )(plane, t)
        assert end > t  # every operation takes positive time
        assert clock.plane_free[plane] >= end or op in ("read",)
        t = end  # chain


@given(st.data())
def test_copy_back_never_slower_than_inter_plane(data):
    plane = data.draw(st.integers(0, TINY.num_planes - 1))
    start = data.draw(st.floats(0, 1e6, allow_nan=False))
    c1 = FlashTimekeeper(TINY, TimingParams())
    c2 = FlashTimekeeper(TINY, TimingParams())
    cb = c1.copy_back(plane, start) - start
    ip = c2.inter_plane_copy(plane, plane, start) - start
    assert cb < ip


# ---- whole-FTL state machine -------------------------------------------------------


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    ftl_name=st.sampled_from(
        ["dloop", "dloop-mp", "dftl", "fast", "bast", "last", "superblock", "pagemap"]
    ),
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(0, int(TINY.num_lpns * 0.6) - 1)),
        min_size=1,
        max_size=300,
    ),
)
def test_ftl_matches_reference_model(ftl_name, ops):
    """Any op sequence: the FTL's mapping equals a dict reference model,
    flash state stays consistent, and time never goes backwards."""
    kwargs = {"cmt_entries": 16} if ftl_name in ("dloop", "dloop-mp", "dftl") else {}
    if ftl_name == "superblock":
        kwargs = {"superblock_size": 2}
    ftl = create_ftl(ftl_name, TINY, TimingParams(), **kwargs)
    reference = {}
    t = 0.0
    for is_write, lpn in ops:
        if is_write:
            end = ftl.write_page(lpn, t)
            reference[lpn] = True
        else:
            end = ftl.read_page(lpn, t)
        assert end >= t
        t = end
    assert set(int(x) for x in ftl.mapped_lpns()) == set(reference)
    ftl.verify_integrity()


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    ops=st.lists(
        st.integers(0, int(TINY.num_lpns * 0.6) - 1),
        min_size=50,
        max_size=400,
    )
)
def test_dloop_update_plane_invariant(ops):
    """Every valid data page of DLOOP sits on plane lpn %% planes unless
    emergency relocation moved it (tracked in gc stats)."""
    ftl = create_ftl("dloop", TINY, TimingParams(), cmt_entries=16)
    for i, lpn in enumerate(ops):
        ftl.write_page(lpn, float(i))
    if ftl.gc_stats.emergency_passes == 0:
        for lpn in ftl.mapped_lpns():
            plane = ftl.codec.ppn_to_plane(int(ftl.page_table[lpn]))
            assert plane == int(lpn) % TINY.num_planes


# ---- zipf --------------------------------------------------------------------------


@given(n=st.integers(1, 500), theta=st.floats(0, 2, allow_nan=False))
def test_zipf_pmf_properties(n, theta):
    from repro.traces.zipf import ZipfSampler

    z = ZipfSampler(n, theta, np.random.default_rng(0))
    pmf = z.pmf()
    assert len(pmf) == n
    assert math.isclose(pmf.sum(), 1.0, rel_tol=1e-9)
    assert np.all(np.diff(pmf) <= 1e-12)  # non-increasing


# ---- write buffer -------------------------------------------------------------------


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    capacity=st.integers(1, 12),
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(0, int(TINY.num_lpns * 0.5) - 1)),
        min_size=1,
        max_size=150,
    ),
)
def test_write_buffer_flush_equals_direct_writes(capacity, ops):
    """buffer(ops) + flush leaves the same mapped set as direct writes."""
    from repro.controller.writebuffer import WriteBuffer

    direct = create_ftl("pagemap", TINY, TimingParams())
    buffered_ftl = create_ftl("pagemap", TINY, TimingParams())
    buffer = WriteBuffer(buffered_ftl, capacity_pages=capacity)
    t = 0.0
    for is_write, lpn in ops:
        if is_write:
            direct.write_page(lpn, t)
            t2 = buffer.write_page(lpn, t)
        else:
            direct.read_page(lpn, t)
            t2 = buffer.read_page(lpn, t)
        assert t2 >= t
        t += 1000.0
    buffer.flush(t)
    assert set(map(int, direct.mapped_lpns())) == set(map(int, buffered_ftl.mapped_lpns()))
    buffered_ftl.verify_integrity()


# ---- latency histogram ---------------------------------------------------------------


@given(values=st.lists(st.floats(0.1, 1e6, allow_nan=False, allow_infinity=False), min_size=1, max_size=300))
def test_histogram_percentiles_ordered(values):
    from repro.metrics.latency import LatencyHistogram

    h = LatencyHistogram()
    h.record_many(values)
    assert h.total == len(values)
    p50, p95, p99 = h.percentile(50), h.percentile(95), h.percentile(99)
    assert p50 <= p95 <= p99
    # estimates stay within one log-bucket of the true maximum
    top_bucket_hi = h.bucket_bounds(h._bucket_of(max(h.max_seen, h.min_us)))[1]
    assert h.percentile(100) <= top_bucket_hi + 1e-6
