"""SSD geometry arithmetic and the paper's Table I configuration."""

import pytest

from repro.flash.geometry import GB, KB, SSDGeometry


def test_paper_default_matches_section_iii():
    geom = SSDGeometry()
    assert geom.num_planes == 32
    # "Assume that one plane has 2,048 data blocks plus such extra blocks."
    assert geom.blocks_per_plane == 2048
    assert geom.capacity_bytes == 8 * GB
    assert geom.page_size == 2 * KB
    assert geom.pages_per_block == 64


def test_extra_blocks_rounded_up():
    geom = SSDGeometry(blocks_per_plane=100, extra_blocks_percent=2.5)
    assert geom.extra_blocks_per_plane == 3
    assert geom.physical_blocks_per_plane == 103


def test_capacity_excludes_extra_blocks():
    base = SSDGeometry(extra_blocks_percent=0.0)
    with_extra = SSDGeometry(extra_blocks_percent=10.0)
    assert base.capacity_bytes == with_extra.capacity_bytes
    assert with_extra.num_physical_blocks > base.num_physical_blocks


def test_plane_to_channel_is_interleaved(small_geometry):
    channels = small_geometry.channels
    for plane in range(small_geometry.num_planes):
        assert small_geometry.plane_to_channel(plane) == plane % channels


def test_planes_of_die_partition_all_planes():
    geom = SSDGeometry()
    seen = set()
    for die in range(geom.num_dies):
        planes = list(geom.planes_of_die(die))
        assert len(planes) == geom.planes_per_die
        for plane in planes:
            assert geom.plane_to_die(plane) == die
            assert plane not in seen
            seen.add(plane)
    assert seen == set(range(geom.num_planes))


def test_from_capacity_round_trip():
    geom = SSDGeometry.from_capacity(8 * GB)
    assert geom.capacity_bytes == 8 * GB
    assert geom.blocks_per_plane == 2048


def test_from_capacity_scales_blocks_not_planes():
    g2 = SSDGeometry.from_capacity(2 * GB)
    g64 = SSDGeometry.from_capacity(64 * GB)
    assert g2.num_planes == g64.num_planes == 32
    assert g64.blocks_per_plane == 32 * g2.blocks_per_plane


def test_from_capacity_too_small_raises():
    with pytest.raises(ValueError):
        SSDGeometry.from_capacity(1024)


def test_with_page_size_preserves_capacity():
    geom = SSDGeometry.from_capacity(8 * GB)
    for page_kb in (2, 4, 8, 16):
        resized = geom.with_page_size(page_kb * KB)
        assert resized.capacity_bytes == geom.capacity_bytes
        assert resized.page_size == page_kb * KB


def test_with_extra_blocks():
    geom = SSDGeometry().with_extra_blocks(10.0)
    assert geom.extra_blocks_percent == 10.0
    assert geom.capacity_bytes == SSDGeometry().capacity_bytes


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        SSDGeometry(channels=0)
    with pytest.raises(ValueError):
        SSDGeometry(pages_per_block=63)  # must be even for parity rule
    with pytest.raises(ValueError):
        SSDGeometry(extra_blocks_percent=-1)


def test_describe_reports_table1_fields():
    desc = SSDGeometry().describe()
    assert desc["SSD capacity (GB)"] == 8.0
    assert desc["Page size (KB)"] == 2.0
    assert desc["Pages per block"] == 64
    assert desc["Percentage of extra blocks"] == 3.0


def test_die_major_plane_order():
    geom = SSDGeometry(plane_order="die-major")
    planes_per_channel = geom.num_planes // geom.channels
    # consecutive planes share a channel under die-major ordering
    assert geom.plane_to_channel(0) == geom.plane_to_channel(1)
    assert geom.plane_to_channel(0) != geom.plane_to_channel(planes_per_channel)
    # dies still partition planes
    seen = set()
    for die in range(geom.num_dies):
        for plane in geom.planes_of_die(die):
            assert geom.plane_to_die(plane) == die
            seen.add(plane)
    assert seen == set(range(geom.num_planes))


def test_channel_interleaved_spreads_consecutive_planes():
    geom = SSDGeometry()  # default ordering
    channels = {geom.plane_to_channel(p) for p in range(geom.channels)}
    assert len(channels) == geom.channels


def test_invalid_plane_order_rejected():
    with pytest.raises(ValueError):
        SSDGeometry(plane_order="diagonal")
