"""Trace transformation tools."""

import pytest

from repro.traces.model import TraceRequest
from repro.traces.transform import (
    fit_addresses,
    filter_ops,
    merge_traces,
    scale_rate,
    time_window,
    truncate,
)


def make_trace():
    return [
        TraceRequest(0.0, 0, 4096, True),
        TraceRequest(1000.0, 8192, 4096, False),
        TraceRequest(2000.0, 1_000_000, 4096, True),
        TraceRequest(3000.0, 16384, 8192, False),
    ]


def test_scale_rate_compresses_timeline():
    out = scale_rate(make_trace(), 2.0)
    assert [r.arrival_us for r in out] == [0.0, 500.0, 1000.0, 1500.0]
    assert out[0].offset_bytes == 0  # addresses untouched


def test_scale_rate_validation():
    with pytest.raises(ValueError):
        scale_rate(make_trace(), 0)


def test_time_window_selects_and_rebases():
    out = time_window(make_trace(), 1000.0, 3000.0)
    assert len(out) == 2
    assert out[0].arrival_us == 0.0
    assert out[1].arrival_us == 1000.0


def test_time_window_no_rebase():
    out = time_window(make_trace(), 1000.0, 3000.0, rebase=False)
    assert out[0].arrival_us == 1000.0


def test_time_window_validation():
    with pytest.raises(ValueError):
        time_window(make_trace(), 5.0, 5.0)


def test_fit_addresses_wrap():
    out = fit_addresses(make_trace(), capacity_bytes=65536, mode="wrap")
    assert all(r.end_bytes <= 65536 for r in out)
    # wrap preserves small offsets exactly
    assert out[0].offset_bytes == 0
    assert out[1].offset_bytes == 8192


def test_fit_addresses_scale_preserves_order():
    out = fit_addresses(make_trace(), capacity_bytes=65536, mode="scale")
    offsets = [r.offset_bytes for r in out]
    assert offsets == sorted(offsets[:3]) + [offsets[3]]
    assert all(r.end_bytes <= 65536 for r in out)


def test_fit_addresses_noop_when_fits():
    trace = make_trace()[:2]
    out = fit_addresses(trace, capacity_bytes=10**9, mode="scale")
    assert [r.offset_bytes for r in out] == [r.offset_bytes for r in trace]


def test_fit_addresses_validation():
    with pytest.raises(ValueError):
        fit_addresses(make_trace(), 0)
    with pytest.raises(ValueError):
        fit_addresses(make_trace(), 1024, mode="fold")


def test_filter_ops():
    writes = filter_ops(make_trace(), reads=False)
    reads = filter_ops(make_trace(), writes=False)
    assert all(r.is_write for r in writes)
    assert not any(r.is_write for r in reads)
    assert len(writes) + len(reads) == 4
    with pytest.raises(ValueError):
        filter_ops(make_trace(), writes=False, reads=False)


def test_merge_traces_ordered():
    a = [TraceRequest(0.0, 0, 512, True), TraceRequest(100.0, 0, 512, True)]
    b = [TraceRequest(50.0, 512, 512, False)]
    merged = merge_traces(a, b)
    assert [r.arrival_us for r in merged] == [0.0, 50.0, 100.0]


def test_truncate():
    assert len(truncate(make_trace(), 2)) == 2
    assert truncate(make_trace(), 0) == []
    with pytest.raises(ValueError):
        truncate(make_trace(), -1)


def test_transforms_compose_for_scaled_replay(small_geometry):
    """The intended pipeline: window -> fit -> scale rate -> replay."""
    from repro.controller.device import SimulatedSSD
    from repro.sim.request import IoOp
    from repro.traces.synthetic import generate, make_workload

    spec = make_workload("exchange", num_requests=500, footprint_bytes=32 * 1024 * 1024)
    raw = generate(spec)
    prepared = scale_rate(
        fit_addresses(time_window(raw, 0.0, 5e5), small_geometry.capacity_bytes), 2.0
    )
    assert prepared
    ssd = SimulatedSSD(small_geometry, ftl="pagemap")
    for r in prepared:
        op = IoOp.WRITE if r.is_write else IoOp.READ
        ssd.submit(ssd.byte_request(r.arrival_us, r.offset_bytes, r.size_bytes, op))
    ssd.run()
    ssd.verify()
