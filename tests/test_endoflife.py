"""End-of-life behaviour: the device degrades, it does not crash.

Aggressive erase failures retire blocks until the free pools can no
longer absorb writes.  The contract (ISSUE: robustness): requests that
cannot be served fail individually with an ENOSPC-style error on the
request, the simulation keeps running, and the sanitizer's shadow
model stays coherent throughout.
"""

import random

import pytest

from repro.controller.device import SimulatedSSD
from repro.faults import FaultConfig
from repro.sim.request import IoOp, IoRequest


def _write_hammer(num_lpns: int, n: int, seed: int = 13):
    """Write-only churn over half the logical space — forces GC, and
    with blocks retiring underneath it, eventual exhaustion."""
    rng = random.Random(seed)
    space = max(1, int(num_lpns * 0.5))
    t = 0.0
    requests = []
    for _ in range(n):
        t += rng.expovariate(1 / 300.0)
        requests.append(IoRequest(t, rng.randrange(space), 1, IoOp.WRITE))
    return requests


@pytest.mark.parametrize("name", ("dloop", "dftl", "fast"))
def test_device_wears_out_gracefully(small_geometry, name):
    config = FaultConfig(seed=21, erase_fail_rate=0.30)
    ssd = SimulatedSSD(small_geometry, ftl=name, sanitize=True, faults=config)
    ssd.precondition(0.5)
    requests = _write_hammer(small_geometry.num_lpns, n=3000)
    ssd.run(requests)  # must not raise

    stats = ssd.stats
    assert ssd.faults.stats.erase_failures > 0
    assert ssd.ftl.array.bad_block_count() > 0
    assert stats.failed_requests > 0, "device never hit end of life"
    assert stats.failed_requests < len(requests), "some writes did land"
    failed = [r for r in requests if r.error is not None]
    assert len(failed) == stats.failed_requests
    assert all(r.op is IoOp.WRITE for r in failed)
    # failed requests still complete (with an error status), they don't hang
    assert all(r.completion_us >= r.arrival_us for r in failed)

    # The shadow model stayed coherent through retirement + exhaustion.
    report = ssd.sanitizer.finalize()
    assert report["violations"] == 0
    ssd.verify()


def test_reads_survive_after_enospc(small_geometry):
    """A full device still serves reads for data it accepted earlier."""
    config = FaultConfig(seed=22, erase_fail_rate=0.35)
    ssd = SimulatedSSD(small_geometry, ftl="dloop", sanitize=True,
                       faults=config)
    ssd.precondition(0.5)
    ssd.run(_write_hammer(small_geometry.num_lpns, n=3000, seed=5))
    assert ssd.stats.failed_requests > 0

    mapped = [lpn for lpn in range(small_geometry.num_lpns)
              if ssd.ftl.page_table[lpn] != -1]
    assert mapped, "end of life should not have unmapped everything"
    t0 = ssd.engine.now
    reads = [IoRequest(t0 + 10.0 * i, lpn, 1, IoOp.READ)
             for i, lpn in enumerate(mapped[:32])]
    before = ssd.stats.failed_requests
    ssd.run(reads)
    assert ssd.stats.failed_requests == before
    assert all(r.error is None for r in reads)
    assert ssd.sanitizer.finalize()["violations"] == 0


def test_end_of_life_metrics_expose_wear(small_geometry):
    """remaining_life_fraction / retired_fraction move the right way as
    the device wears out (satellite: cheap wear gauges)."""
    config = FaultConfig(seed=23, erase_fail_rate=0.30)
    ssd = SimulatedSSD(small_geometry, ftl="dloop", faults=config,
                       bad_blocks={"rated_cycles": 200, "factory_bad_rate": 0.0})
    manager = ssd.bad_blocks
    assert manager.retired_fraction() == 0.0
    life_fresh = manager.remaining_life_fraction()
    ssd.precondition(0.5)
    ssd.run(_write_hammer(small_geometry.num_lpns, n=3000, seed=7))
    assert manager.retired_fraction() > 0.0
    assert manager.remaining_life_fraction() < life_fresh
    assert manager.stats.runtime_retired + manager.stats.factory_bad <= \
        ssd.ftl.array.bad_block_count()


def test_error_samples_stay_out_of_moments_on_both_paths(small_geometry):
    """ENOSPC'd requests are bucketed apart from successes identically
    on the materialized (``RequestStats``) and streamed
    (``StreamingRequestStats``) paths: same failure count, same success
    count, same moments — and count + failed always equals the trace
    length (regression: errors used to pollute the Welford moments and
    the percentile reservoir)."""
    def build():
        ssd = SimulatedSSD(small_geometry, ftl="dloop",
                           faults=FaultConfig(seed=21, erase_fail_rate=0.30))
        ssd.precondition(0.5)
        return ssd

    requests = _write_hammer(small_geometry.num_lpns, n=3000)

    materialized = build()
    materialized.run(list(requests))

    streamed = build()
    streamed.run_stream(
        iter(_write_hammer(small_geometry.num_lpns, n=3000))
    )

    m, s = materialized.stats, streamed.stats
    assert m.failed_requests > 0, "trace never hit end of life"
    assert s.failed_requests == m.failed_requests
    # Successes only in the headline count, on both paths.
    assert s.count == m.count
    assert m.count + m.failed_requests == len(requests)
    # Errors land in their own bucket, same cardinality both paths.
    assert len(m.error_response_us) == m.failed_requests
    assert s.errors.count == s.failed_requests
    # Success moments agree (Welford vs full-series numpy).
    assert s.mean_response_us() == pytest.approx(
        m.mean_response_us(), rel=1e-9
    )
    # Error-bucket moments agree too.
    import numpy as np

    assert s.errors.mean == pytest.approx(
        float(np.mean(m.error_response_us)), rel=1e-9
    )
