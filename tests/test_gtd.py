"""Global Translation Directory: tvpn arithmetic and lookups."""

import pytest

from repro.ftl.gtd import GlobalTranslationDirectory


def test_entries_per_tpage_from_page_size():
    gtd = GlobalTranslationDirectory(num_lpns=10000, page_size=2048)
    assert gtd.entries_per_tpage == 512
    assert gtd.num_tpages == 20  # ceil(10000 / 512)


def test_tvpn_of_groups_consecutive_lpns():
    gtd = GlobalTranslationDirectory(num_lpns=1024, page_size=256)  # 64 entries
    assert gtd.tvpn_of(0) == 0
    assert gtd.tvpn_of(63) == 0
    assert gtd.tvpn_of(64) == 1
    assert gtd.tvpn_of(1023) == 15


def test_lpns_of_tvpn_inverse():
    gtd = GlobalTranslationDirectory(num_lpns=1024, page_size=256)
    for tvpn in range(gtd.num_tpages):
        for lpn in gtd.lpns_of_tvpn(tvpn):
            assert gtd.tvpn_of(lpn) == tvpn


def test_unmapped_by_default():
    gtd = GlobalTranslationDirectory(num_lpns=100, page_size=256)
    assert not gtd.is_mapped(0)
    assert gtd.lookup(0) == -1
    assert gtd.mapped_count() == 0


def test_update_and_lookup():
    gtd = GlobalTranslationDirectory(num_lpns=100, page_size=256)
    gtd.update(1, 777)
    assert gtd.is_mapped(1)
    assert gtd.lookup(1) == 777
    assert gtd.mapped_count() == 1
    gtd.update(1, 888)
    assert gtd.lookup(1) == 888
    assert gtd.mapped_count() == 1


def test_tiny_page_size_floor():
    gtd = GlobalTranslationDirectory(num_lpns=8, page_size=2)
    assert gtd.entries_per_tpage >= 1


def test_invalid_num_lpns():
    with pytest.raises(ValueError):
        GlobalTranslationDirectory(num_lpns=0, page_size=2048)
