"""Multi-tenancy: namespaces, DRR fairness/determinism, SLO stats, the
traffic synthesizer, and the end-to-end fleet run."""

import math

import pytest

from repro.controller.device import SimulatedSSD
from repro.flash.geometry import SSDGeometry
from repro.flash.timing import TimingParams
from repro.perf.fingerprint import engine_fingerprint, ftl_fingerprint
from repro.sim.request import IoOp, IoRequest
from repro.tenancy import (
    Namespace,
    NamespaceError,
    TenantQueue,
    TenantSpec,
    TrafficModel,
    build_namespaces,
    build_tenancy,
    diurnal_warp,
    drr_merge,
    jain_index,
    parse_tenants_spec,
    run_tenant_workload,
)
from repro.tenancy.stats import TenantStats, TenantStatsRouter

MB = 2**20
GEOMETRY = SSDGeometry.from_capacity(8 * MB)


# ---- namespaces -------------------------------------------------------------


def test_namespace_translate_and_bounds():
    ns = Namespace(nsid=1, name="a", base_lpn=100, num_lpns=50)
    assert ns.translate(0) == 100
    assert ns.translate(49) == 149
    assert ns.translate(40, page_count=10) == 140
    assert ns.end_lpn == 150
    with pytest.raises(NamespaceError):
        ns.translate(50)
    with pytest.raises(NamespaceError):
        ns.translate(-1)
    with pytest.raises(NamespaceError):
        ns.translate(45, page_count=6)


def test_namespace_validation():
    with pytest.raises(NamespaceError):
        Namespace(nsid=-1, name="a", base_lpn=0, num_lpns=1)
    with pytest.raises(NamespaceError):
        Namespace(nsid=0, name="a", base_lpn=-1, num_lpns=1)
    with pytest.raises(NamespaceError):
        Namespace(nsid=0, name="a", base_lpn=0, num_lpns=0)


def test_build_namespaces_partitions_back_to_back():
    namespaces = build_namespaces(1000, ["a", "b", "c"])
    assert [ns.nsid for ns in namespaces] == [0, 1, 2]
    base = 0
    for ns in namespaces:
        assert ns.base_lpn == base
        assert ns.num_lpns >= 1
        base = ns.end_lpn
    assert base <= 1000
    # Equal split of 1000 over 3: each within one page of the others.
    extents = [ns.num_lpns for ns in namespaces]
    assert max(extents) - min(extents) <= 1


def test_build_namespaces_weighted_shares():
    namespaces = build_namespaces(900, ["big", "small"], shares=[2.0, 1.0])
    assert namespaces[0].num_lpns == 600
    assert namespaces[1].num_lpns == 300


def test_build_namespaces_rejects_bad_layouts():
    with pytest.raises(NamespaceError):
        build_namespaces(100, [])
    with pytest.raises(NamespaceError):
        build_namespaces(2, ["a", "b", "c"])
    with pytest.raises(NamespaceError):
        build_namespaces(100, ["a", "b"], shares=[1.0])
    with pytest.raises(NamespaceError):
        build_namespaces(100, ["a", "b"], shares=[1.0, 0.0])


# ---- DRR scheduler ----------------------------------------------------------


def _queue(nsid, requests, *, extent=10_000, weight=1.0):
    ns = Namespace(nsid=nsid, name=f"q{nsid}", base_lpn=nsid * extent,
                   num_lpns=extent)
    return TenantQueue(ns, iter(requests), weight=weight)


def _backlog(n, *, page_count=1, arrival=0.0, step=0.0):
    """n requests, all due at (or stepping from) ``arrival``."""
    return [IoRequest(arrival + i * step, i % 64, page_count, IoOp.WRITE)
            for i in range(n)]


def test_tenant_queue_validation():
    with pytest.raises(ValueError):
        _queue(0, _backlog(1), weight=0.0)
    q = _queue(0, _backlog(1))
    q.pop()
    with pytest.raises(NamespaceError):
        q.pop()


def test_drr_rejects_bad_quantum():
    with pytest.raises(ValueError):
        list(drr_merge([_queue(0, _backlog(2))], quantum_pages=0))


def test_drr_emits_every_request_translated_and_tagged():
    queues = [_queue(0, _backlog(50)), _queue(1, _backlog(70))]
    merged = list(drr_merge(queues))
    assert len(merged) == 120
    for request in merged:
        ns = queues[request.tenant].namespace
        assert ns.base_lpn <= request.start_lpn < ns.end_lpn
    assert sum(1 for r in merged if r.tenant == 0) == 50
    assert sum(1 for r in merged if r.tenant == 1) == 70


def test_drr_output_is_monotone():
    # Different per-tenant cadences, so raw arrivals interleave badly.
    queues = [
        _queue(0, _backlog(200, step=7.0)),
        _queue(1, _backlog(150, step=11.0, arrival=3.0)),
        _queue(2, _backlog(100, step=2.5, arrival=500.0)),
    ]
    last = -math.inf
    for request in drr_merge(queues):
        assert request.arrival_us >= last
        last = request.arrival_us


def test_drr_same_seed_bit_identical():
    model = TrafficModel(
        tenants=(TenantSpec("a"), TenantSpec("b", persona="webserver"),
                 TenantSpec("c", weight=2.0)),
        total_requests=600,
        base_seed=99,
    )

    def signature():
        fleet = build_tenancy(GEOMETRY, model)
        return [(r.arrival_us, r.start_lpn, r.page_count, r.op.value,
                 r.tenant) for r in drr_merge(fleet.queues)]

    first = signature()
    second = signature()
    assert first == second
    assert len(first) >= 600 - 3  # rounding may shave a request or two


def test_drr_equal_weights_interleave_fairly():
    """Three saturated equal-weight tenants: any admission prefix splits
    close to evenly (Jain >= 0.95 per the acceptance bar; the exact
    schedule is round-robin so it is essentially 1.0)."""
    queues = [_queue(i, _backlog(400)) for i in range(3)]
    merged = drr_merge(queues)
    prefix = [next(merged) for _ in range(300)]
    counts = [sum(1 for r in prefix if r.tenant == i) for i in range(3)]
    assert jain_index(counts) >= 0.95


def test_drr_weighted_shares_converge():
    """2:1 weights over saturated queues: admitted-page shares track the
    weights within 5% over a long prefix."""
    queues = [
        _queue(0, _backlog(2000), weight=2.0),
        _queue(1, _backlog(2000), weight=1.0),
    ]
    merged = drr_merge(queues)
    prefix = [next(merged) for _ in range(900)]
    pages = [sum(r.page_count for r in prefix if r.tenant == i)
             for i in range(2)]
    total = sum(pages)
    assert pages[0] / total == pytest.approx(2 / 3, rel=0.05)
    assert pages[1] / total == pytest.approx(1 / 3, rel=0.05)


def test_drr_bounds_starvation_under_burst():
    """An adversarial tenant dumping large requests at t=0 cannot starve
    a small-request tenant: between consecutive small-tenant admissions
    the big tenant serves at most ~2 quanta of pages (classic DRR
    latency bound)."""
    quantum = 8
    queues = [
        _queue(0, _backlog(400, page_count=quantum)),  # the burster
        _queue(1, _backlog(200, page_count=1)),
    ]
    merged = drr_merge(queues, quantum_pages=quantum)
    prefix = [next(merged) for _ in range(600)]
    gap_pages = 0
    worst = 0
    seen_small = False
    for request in prefix:
        if request.tenant == 1:
            if seen_small:
                worst = max(worst, gap_pages)
            seen_small = True
            gap_pages = 0
        elif seen_small:
            gap_pages += request.page_count
    assert seen_small, "small tenant never admitted"
    assert worst <= 2 * quantum


# ---- synthesizer ------------------------------------------------------------


def test_parse_tenants_spec_bare_count():
    tenants = parse_tenants_spec("3", "financial1")
    assert [t.name for t in tenants] == ["tenant0", "tenant1", "tenant2"]
    assert all(t.persona == "financial1" and t.weight == 1.0
               for t in tenants)


def test_parse_tenants_spec_full_form():
    tenants = parse_tenants_spec("olt=financial1:2:8,web=webserver:1,bg=",
                                 "tpcc")
    assert tenants[0] == TenantSpec("olt", "financial1", 2.0, 8.0)
    assert tenants[1] == TenantSpec("web", "webserver", 1.0, None)
    assert tenants[2].persona == "tpcc"  # empty persona -> default


def test_parse_tenants_spec_rejects_garbage():
    with pytest.raises(ValueError):
        parse_tenants_spec("", "financial1")
    with pytest.raises(ValueError):
        parse_tenants_spec("0", "financial1")
    with pytest.raises(ValueError):
        parse_tenants_spec(",,", "financial1")


def test_tenant_spec_validation():
    with pytest.raises(ValueError):
        TenantSpec("")
    with pytest.raises(ValueError):
        TenantSpec("a", weight=0.0)
    with pytest.raises(ValueError):
        TenantSpec("a", slo_p99_ms=0.0)
    with pytest.raises(ValueError):
        TenantSpec("a", share=-1.0)


def test_diurnal_warp_is_monotone_and_anchored():
    trace = list(diurnal_warp(
        iter(_trace_points()), period_us=1000.0, amplitude=0.9,
        phase_rad=2.0,
    ))
    assert trace[0].arrival_us == pytest.approx(0.0, abs=1e-9)
    arrivals = [r.arrival_us for r in trace]
    assert arrivals == sorted(arrivals)


def test_diurnal_warp_zero_amplitude_is_identity():
    points = _trace_points()
    warped = list(diurnal_warp(iter(points), 1000.0, 0.0))
    assert warped == points
    with pytest.raises(ValueError):
        next(diurnal_warp(iter(points), 1000.0, 1.0))
    with pytest.raises(ValueError):
        next(diurnal_warp(iter(points), 0.0, 0.5))


def _trace_points():
    from repro.traces.model import TraceRequest

    return [TraceRequest(arrival_us=float(i * 37), offset_bytes=0,
                         size_bytes=4096, is_write=True)
            for i in range(200)]


def test_popularity_is_zipfian_over_rank():
    model = TrafficModel(tenants=tuple(TenantSpec(f"t{i}")
                                       for i in range(4)))
    pop = model.popularity()
    assert sum(pop) == pytest.approx(1.0)
    assert pop == sorted(pop, reverse=True)
    assert pop[0] > pop[-1]
    flat = TrafficModel(
        tenants=tuple(TenantSpec(f"t{i}") for i in range(4)),
        popularity_theta=0.0,
    )
    assert flat.popularity() == pytest.approx([0.25] * 4)
    assert sum(flat.tenant_request_counts()) >= flat.total_requests - 4


def test_tenant_seeds_fold_by_name_not_position():
    a = TrafficModel(tenants=(TenantSpec("alice"), TenantSpec("bob")))
    b = TrafficModel(tenants=(TenantSpec("alice"), TenantSpec("mallory"),
                              TenantSpec("bob")))
    # Adding a tenant never perturbs another tenant's stream seed.
    assert a.tenant_seed(0) == b.tenant_seed(0)
    assert a.tenant_seed(1) == b.tenant_seed(2)
    assert a.tenant_seed(0) != a.tenant_seed(1)


def test_tenant_streams_stay_inside_their_extent():
    model = TrafficModel(
        tenants=(TenantSpec("a"), TenantSpec("b", persona="webserver")),
        total_requests=400,
    )
    fleet = build_tenancy(GEOMETRY, model)
    for queue in fleet.queues:
        ns = queue.namespace
        while queue.head is not None:
            request = queue.pop()
            assert ns.base_lpn <= request.start_lpn
            assert request.start_lpn + request.page_count <= ns.end_lpn


# ---- per-tenant stats + SLOs ------------------------------------------------


def test_jain_index_extremes():
    assert jain_index([]) == 1.0
    assert jain_index([5, 5, 5]) == pytest.approx(1.0)
    assert jain_index([1, 0, 0, 0]) == pytest.approx(0.25)
    assert jain_index([0, 0]) == 1.0


def _completed(tenant, arrival, response, *, pages=1, error=None):
    request = IoRequest(arrival, 0, pages, IoOp.WRITE)
    request.tenant = tenant
    request.completion_us = arrival + response
    request.error = error
    return request


def test_router_routes_slo_and_errors():
    ns = Namespace(nsid=0, name="a", base_lpn=0, num_lpns=100)
    lane = TenantStats(ns, slo_p99_us=50.0)
    router = TenantStatsRouter([lane])
    router.on_complete(_completed(0, 0.0, 10.0, pages=2))
    router.on_complete(_completed(0, 1.0, 99.0))      # SLO violation
    router.on_complete(_completed(0, 2.0, 80.0, error="ENOSPC"))
    router.on_complete(_completed(7, 3.0, 5.0))       # unknown nsid: dropped
    assert lane.completed_pages == 3
    assert lane.slo_violations == 1
    assert lane.failed_requests == 1
    assert lane.stats.count == 2          # errors stay out of the moments
    summary = lane.summary()
    assert summary["tenant"] == "a"
    assert summary["slo_violations"] == 1
    assert summary["failed_requests"] == 1


def test_router_attach_detach_is_clean():
    ssd = SimulatedSSD(GEOMETRY, TimingParams(), ftl="dloop")
    ns = Namespace(nsid=0, name="a", base_lpn=0, num_lpns=100)
    router = TenantStatsRouter([TenantStats(ns)])
    router.attach(ssd.controller)
    assert ssd.controller.tenants is router
    assert router.on_complete in ssd.controller.on_complete
    router.detach(ssd.controller)
    assert ssd.controller.tenants is None
    assert router.on_complete not in ssd.controller.on_complete


# ---- end to end -------------------------------------------------------------


def _fair_model(n_requests=1800, seed=4242):
    """Three equal tenants with identical demand: popularity flattened
    and the diurnal warp off, so completed shares must track weights."""
    return TrafficModel(
        tenants=(TenantSpec("alpha"), TenantSpec("beta"),
                 TenantSpec("gamma")),
        total_requests=n_requests,
        popularity_theta=0.0,
        diurnal_amplitude=0.0,
        base_seed=seed,
    )


def _fleet_run(model):
    ssd = SimulatedSSD(GEOMETRY, TimingParams(), ftl="dloop")
    ssd.precondition(0.5)
    result = run_tenant_workload(ssd, model, queue_depth=8)
    fp = ftl_fingerprint(ssd.ftl, result.end_us)
    fp.update(engine_fingerprint(ssd.engine))
    return result, fp


def test_three_equal_tenants_get_equal_shares():
    result, _ = _fleet_run(_fair_model())
    shares = result.completed_page_shares
    assert len(shares) == 3
    for share in shares:
        assert share == pytest.approx(1 / 3, rel=0.05)
    assert result.fairness_jain >= 0.95
    summaries = result.summaries
    assert [s["tenant"] for s in summaries] == ["alpha", "beta", "gamma"]
    assert all(s["failed_requests"] == 0 for s in summaries)


def test_fleet_run_is_reproducible_bit_for_bit():
    first, fp_a = _fleet_run(_fair_model())
    second, fp_b = _fleet_run(_fair_model())
    assert fp_a == fp_b
    assert first.end_us == second.end_us
    assert first.summaries == second.summaries


def test_slo_violations_count_end_to_end():
    # A 1 us p99 target is unmeetable: every completion violates it.
    model = TrafficModel(
        tenants=(TenantSpec("tight", slo_p99_ms=0.001),
                 TenantSpec("loose")),
        total_requests=300,
        base_seed=7,
    )
    ssd = SimulatedSSD(GEOMETRY, TimingParams(), ftl="dloop")
    ssd.precondition(0.5)
    result = run_tenant_workload(ssd, model, queue_depth=8)
    tight, loose = result.summaries
    assert tight["slo_violations"] == tight["requests"] > 0
    assert loose["slo_violations"] == 0
    assert loose["slo_p99_us"] is None


def test_namespace_shares_carve_the_lpn_space():
    model = TrafficModel(
        tenants=(TenantSpec("big", share=3.0), TenantSpec("small")),
        total_requests=200,
    )
    fleet = build_tenancy(GEOMETRY, model)
    big, small = fleet.namespaces
    assert big.num_lpns == pytest.approx(3 * small.num_lpns, rel=0.01)


# ---- experiments / conformance integration ----------------------------------


def test_run_workload_tenants_extras():
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import run_workload
    from repro.traces.synthetic import make_workload

    spec = make_workload("financial1", num_requests=600, seed=11)
    config = ExperimentConfig(geometry=GEOMETRY, ftl="dloop",
                              precondition_fill=0.5)
    result = run_workload(spec, config, stream=True, queue_depth=8,
                          tenants=3)
    extras = result.extras["tenants"]
    assert len(extras["summaries"]) == 3
    assert len(extras["completed_page_shares"]) == 3
    assert 0.0 < extras["fairness_jain"] <= 1.0
    assert result.num_requests > 0


def test_tenancy_requires_stream_and_rejects_crash():
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import run_simulation

    config = ExperimentConfig(geometry=GEOMETRY, ftl="dloop")
    model = _fair_model(n_requests=100)
    with pytest.raises(ValueError):
        run_simulation(iter(()), config, tenancy=model)
    with pytest.raises(ValueError):
        run_simulation(iter(()), config, stream=True, tenancy=model,
                       crash_at_us=1000.0)


def test_scenario_id_gains_tenant_axis_only_when_set():
    from repro.conformance.matrix import ScenarioMatrix

    base = ScenarioMatrix(workloads=("financial1",), ftls=("dloop",),
                          num_requests=100, capacities_mb=(8,))
    plain = base.expand()
    assert all("|t" not in s.scenario_id for s in plain)
    assert all(s.tenants == 0 for s in plain)
    assert all("tenants" not in s.as_dict() for s in plain)

    tenanted = ScenarioMatrix(workloads=("financial1",), ftls=("dloop",),
                              num_requests=100, capacities_mb=(8,),
                              tenant_counts=(0, 2)).expand()
    assert len(tenanted) == 2 * len(plain)
    # Pre-tenancy ids (and therefore per-scenario seeds) are unchanged.
    assert [s.scenario_id for s in tenanted if s.tenants == 0] == [
        s.scenario_id for s in plain
    ]
    assert all(s.scenario_id.endswith("|t2")
               for s in tenanted if s.tenants == 2)


def test_run_matrix_scores_a_tenanted_scenario():
    from repro.conformance.matrix import ScenarioMatrix
    from repro.conformance.runner import run_matrix

    matrix = ScenarioMatrix(workloads=("financial1",), ftls=("dloop",),
                            num_requests=400, capacities_mb=(8,),
                            tenant_counts=(2,))
    outcomes = run_matrix(matrix, processes=1)
    assert len(outcomes) == 1
    metrics = outcomes[0].metrics
    assert metrics["tenants"] == 2
    assert 0.0 < metrics["tenant_fairness_jain"] <= 1.0
    assert outcomes[0].rules, "conformance probes did not score"
