"""BAST hybrid FTL: block-associated logs and their thrashing."""

import random

import pytest

from repro.ftl.bast import BastFtl
from repro.ftl.fast import FastFtl


@pytest.fixture
def ftl(small_geometry, timing):
    return BastFtl(small_geometry, timing, num_log_blocks=4)


def test_each_lbn_gets_its_own_log(ftl):
    ppb = ftl.pages_per_block
    ftl.write_page(1, 0.0)          # lbn 0
    ftl.write_page(ppb + 1, 0.0)    # lbn 1
    assert len(ftl.log_of_lbn) == 2
    assert ftl.log_of_lbn[0] != ftl.log_of_lbn[1]


def test_updates_append_to_the_association(ftl):
    ftl.write_page(1, 0.0)
    block = ftl.log_of_lbn[0]
    ftl.write_page(2, 0.0)
    ftl.write_page(1, 0.0)  # rewrite: same log block
    assert ftl.log_of_lbn[0] == block
    assert int(ftl.array.block_write_ptr[block]) == 3


def test_pool_exhaustion_merges_lru_association(ftl):
    ppb = ftl.pages_per_block
    for lbn in range(4):
        ftl.write_page(lbn * ppb + 1, 0.0)
    assert ftl.log_blocks_in_use() == 4
    merges_before = ftl.bast_stats.full_merges
    ftl.write_page(4 * ppb + 1, 0.0)  # 5th association: evict lbn 0
    assert ftl.bast_stats.full_merges == merges_before + 1
    assert 0 not in ftl.log_of_lbn
    assert ftl.log_blocks_in_use() == 4


def test_switch_merge_on_perfect_sequential_log(ftl):
    ppb = ftl.pages_per_block
    for off in range(ppb):
        ftl.write_page(off, 0.0)  # fills lbn 0's log sequentially
    # log is full; the next write to lbn 0 merges it — a switch merge
    moves_before = ftl.gc_stats.moved_pages
    ftl.write_page(0, 0.0)
    assert ftl.bast_stats.switch_merges == 1
    assert ftl.gc_stats.moved_pages == moves_before
    assert ftl.data_block[0] != -1


def test_full_log_triggers_merge_and_new_log(ftl):
    ppb = ftl.pages_per_block
    for i in range(ppb):
        ftl.write_page(1, float(i))  # same page repeatedly: log fills with stale copies
    ftl.write_page(1, 99.0)
    assert ftl.bast_stats.full_merges >= 1
    ftl.verify_integrity()


def test_random_writes_thrash_worse_than_fast(small_geometry, timing):
    """BAST's known weakness: scattered updates exhaust associations."""
    workload = [(random.Random(31).randrange(int(small_geometry.num_lpns * 0.6)), i) for i in range(1500)]
    rng = random.Random(31)
    workload = [(rng.randrange(int(small_geometry.num_lpns * 0.6)), i) for i in range(1500)]
    bast = BastFtl(small_geometry, timing, num_log_blocks=4)
    fast = FastFtl(small_geometry, timing, num_log_blocks=4)
    t_bast = t_fast = 0.0
    for lpn, i in workload:
        t_bast = bast.write_page(lpn, float(i))
        t_fast = fast.write_page(lpn, float(i))
    assert bast.gc_stats.moved_pages > fast.gc_stats.moved_pages
    bast.verify_integrity()
    fast.verify_integrity()


def test_map_journal_hits_plane_zero(ftl):
    rng = random.Random(32)
    for i in range(800):
        ftl.write_page(rng.randrange(int(ftl.geometry.num_lpns * 0.6)), float(i))
    assert ftl.map_journal.map_writes > 0
    ftl.verify_integrity()


def test_integrity_under_mixed_load(ftl):
    rng = random.Random(33)
    for i in range(2500):
        lpn = rng.randrange(int(ftl.geometry.num_lpns * 0.7))
        if rng.random() < 0.6:
            ftl.write_page(lpn, float(i))
        else:
            ftl.read_page(lpn, float(i))
    ftl.verify_integrity()


def test_bulk_fill(ftl):
    count = int(ftl.geometry.num_lpns * 0.5)
    ftl.bulk_fill(count)
    assert len(ftl.mapped_lpns()) == count
    ftl.verify_integrity()


def test_needs_at_least_one_log_block(small_geometry, timing):
    with pytest.raises(ValueError):
        BastFtl(small_geometry, timing, num_log_blocks=0)
