"""Shared hybrid-FTL machinery: LogBlockMixin helpers and MapJournal."""

import pytest

from repro.flash.array import FlashArray
from repro.flash.timekeeper import FlashTimekeeper
from repro.ftl.bast import BastFtl
from repro.ftl.logblock import MapJournal


@pytest.fixture
def journal_env(small_geometry, timing):
    array = FlashArray(small_geometry)
    clock = FlashTimekeeper(small_geometry, timing)
    return array, clock


def test_journal_appends_on_plane_zero(journal_env):
    array, clock = journal_env
    journal = MapJournal(array, clock, ring_blocks=2)
    t = journal.record_update(0.0)
    assert t > 0.0
    assert journal.map_writes == 1
    assert clock.counters.plane_ops[0] == 1
    assert sum(clock.counters.plane_ops[1:]) == 0


def test_journal_pages_never_stay_valid(journal_env):
    array, clock = journal_env
    journal = MapJournal(array, clock)
    for i in range(20):
        journal.record_update(float(i))
    import numpy as np
    from repro.flash.address import PageState

    assert np.count_nonzero(array.page_state_np == PageState.VALID) == 0


def test_journal_ring_recycles(journal_env):
    array, clock = journal_env
    journal = MapJournal(array, clock, ring_blocks=2)
    ppb = array.geometry.pages_per_block
    free_before = array.free_block_count(0)
    # enough updates to wrap the ring several times
    for i in range(ppb * 6):
        journal.record_update(float(i))
    # ring never holds more than ring_blocks
    assert free_before - array.free_block_count(0) <= 2
    assert clock.counters.erases >= 4


def test_journal_validation(journal_env):
    array, clock = journal_env
    with pytest.raises(ValueError):
        MapJournal(array, clock, ring_blocks=0)


def test_mixin_switchable_detection(small_geometry, timing):
    ftl = BastFtl(small_geometry, timing, num_log_blocks=4)
    ppb = ftl.pages_per_block
    for off in range(ppb):
        ftl.write_page(off, 0.0)
    block = ftl.log_of_lbn[0]
    assert ftl._log_is_switchable(block, 0)
    # a rewritten page breaks switchability (stale copy inside)
    ftl2 = BastFtl(small_geometry, timing, num_log_blocks=4)
    for off in list(range(ppb - 1)) + [0]:  # rewrite offset 0 at the end
        ftl2.write_page(off, 0.0)
    block2 = ftl2.log_of_lbn[0]
    assert not ftl2._log_is_switchable(block2, 0)


def test_mixin_gather_merge_builds_clean_block(small_geometry, timing):
    ftl = BastFtl(small_geometry, timing, num_log_blocks=4)
    ppb = ftl.pages_per_block
    # scatter lbn 0's pages across logs via random-order writes
    for off in (3, 1, 5, 1, 3):
        ftl.write_page(off, 0.0)
    ftl._merge_association(0, 0.0)
    block = int(ftl.data_block[0])
    assert block != -1
    for ppn in ftl.array.valid_pages_in_block(block):
        owner = ftl.array.owner_of(ppn)
        assert owner // ppb == 0
        assert ppn % ppb == owner % ppb  # offsets preserved
    ftl.verify_integrity()


def test_mixin_summary(small_geometry, timing):
    ftl = BastFtl(small_geometry, timing, num_log_blocks=4)
    ftl.write_page(1, 0.0)
    summary = ftl.log_block_summary()
    assert summary["associations"] == 1
