"""PPN packing, parity, and owner encoding."""

import pytest

from repro.flash.address import (
    AddressCodec,
    decode_translation_owner,
    encode_translation_owner,
    is_translation_owner,
    OWNER_NONE,
)


def test_ppn_round_trip(small_geometry):
    codec = AddressCodec(small_geometry)
    for plane in range(small_geometry.num_planes):
        for block in (0, 7, small_geometry.physical_blocks_per_plane - 1):
            for page in (0, 3, small_geometry.pages_per_block - 1):
                ppn = codec.make_ppn(plane, block, page)
                assert codec.ppn_to_plane(ppn) == plane
                assert codec.ppn_to_block(ppn) == codec.make_block(plane, block)
                assert codec.ppn_to_page(ppn) == page


def test_ppns_are_unique(small_geometry):
    codec = AddressCodec(small_geometry)
    seen = set()
    for plane in range(small_geometry.num_planes):
        for block in range(small_geometry.physical_blocks_per_plane):
            for page in range(small_geometry.pages_per_block):
                ppn = codec.make_ppn(plane, block, page)
                assert ppn not in seen
                seen.add(ppn)
    assert len(seen) == small_geometry.num_physical_pages
    assert min(seen) == 0
    assert max(seen) == small_geometry.num_physical_pages - 1


def test_page_parity_alternates(small_geometry):
    codec = AddressCodec(small_geometry)
    ppn0 = codec.make_ppn(1, 2, 0)
    assert codec.page_parity(ppn0) == 0
    assert codec.page_parity(ppn0 + 1) == 1
    assert codec.page_parity(ppn0 + 2) == 0


def test_out_of_range_rejected(small_geometry):
    codec = AddressCodec(small_geometry)
    with pytest.raises(ValueError):
        codec.make_ppn(small_geometry.num_planes, 0, 0)
    with pytest.raises(ValueError):
        codec.make_ppn(0, small_geometry.physical_blocks_per_plane, 0)
    with pytest.raises(ValueError):
        codec.make_ppn(0, 0, small_geometry.pages_per_block)


def test_block_round_trip(small_geometry):
    codec = AddressCodec(small_geometry)
    block = codec.make_block(3, 5)
    assert codec.block_to_plane(block) == 3
    assert codec.block_to_index_in_plane(block) == 5
    ppns = codec.block_ppns(block)
    assert len(ppns) == small_geometry.pages_per_block
    assert codec.block_first_ppn(block) == ppns.start
    assert all(codec.ppn_to_block(p) == block for p in ppns)


def test_translation_owner_encoding():
    for tvpn in (0, 1, 7, 123456):
        owner = encode_translation_owner(tvpn)
        assert owner <= -2
        assert is_translation_owner(owner)
        assert decode_translation_owner(owner) == tvpn


def test_data_owner_not_translation():
    assert not is_translation_owner(0)
    assert not is_translation_owner(42)
    assert not is_translation_owner(OWNER_NONE)


def test_bad_translation_decodes_rejected():
    with pytest.raises(ValueError):
        decode_translation_owner(0)
    with pytest.raises(ValueError):
        encode_translation_owner(-1)
