"""Telemetry time-series sampling."""

import pytest

from repro.controller.device import SimulatedSSD
from repro.metrics.timeseries import TelemetrySampler
from repro.sim.request import IoOp, IoRequest


def test_sampler_collects_on_grid(small_geometry):
    ssd = SimulatedSSD(small_geometry, ftl="pagemap", telemetry_interval_us=1000.0)
    requests = [IoRequest(float(i * 500), i % 50, 1, IoOp.WRITE) for i in range(50)]
    ssd.run(requests)
    telemetry = ssd.telemetry
    assert telemetry is not None
    assert len(telemetry.times_us) >= 10
    # aligned series
    lengths = {len(v) for v in telemetry.series().values()}
    assert lengths == {len(telemetry.times_us)}


def test_series_track_activity(small_geometry):
    ssd = SimulatedSSD(small_geometry, ftl="pagemap", telemetry_interval_us=500.0)
    requests = [IoRequest(float(i * 250), i % 64, 1, IoOp.WRITE) for i in range(200)]
    ssd.run(requests)
    t = ssd.telemetry
    assert t.flash_programs[-1] >= 200
    assert max(t.total_free_blocks) >= min(t.total_free_blocks)
    assert t.flash_programs == sorted(t.flash_programs)  # cumulative


def test_sampler_does_not_spin_forever(small_geometry):
    ssd = SimulatedSSD(small_geometry, ftl="pagemap", telemetry_interval_us=100.0)
    ssd.run([IoRequest(0.0, 0, 1, IoOp.WRITE)])
    assert ssd.engine.pending == 0  # run() terminated


def test_render_sparklines(small_geometry):
    ssd = SimulatedSSD(small_geometry, ftl="pagemap", telemetry_interval_us=1000.0)
    ssd.run([IoRequest(float(i * 400), i, 1, IoOp.WRITE) for i in range(30)])
    text = ssd.telemetry.render("demo")
    assert "demo" in text
    assert "outstanding" in text


def test_interval_validation(small_geometry):
    ssd = SimulatedSSD(small_geometry, ftl="pagemap")
    with pytest.raises(ValueError):
        TelemetrySampler(ssd.engine, ssd.ftl, ssd.controller, interval_us=0)
