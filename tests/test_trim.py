"""TRIM / discard support."""

import random

import pytest

from repro.controller.device import SimulatedSSD
from repro.flash.address import PageState
from repro.ftl.registry import available_ftls, create_ftl
from repro.sim.request import IoOp, IoRequest


def test_trim_invalidates_and_unmaps(small_geometry, timing):
    ftl = create_ftl("pagemap", small_geometry, timing)
    ftl.write_page(5, 0.0)
    ppn = ftl.current_ppn(5)
    ftl.trim_page(5, 1.0)
    assert ftl.current_ppn(5) == -1
    assert ftl.array.state_of(ppn) == PageState.INVALID
    assert ftl.stats.host_trims == 1
    ftl.verify_integrity()


def test_trim_unmapped_is_noop(small_geometry, timing):
    ftl = create_ftl("pagemap", small_geometry, timing)
    end = ftl.trim_page(9, 3.0)
    assert end == 3.0
    assert ftl.stats.host_trims == 0


def test_read_after_trim_is_unmapped(small_geometry, timing):
    ftl = create_ftl("dloop", small_geometry, timing, cmt_entries=64)
    ftl.write_page(2, 0.0)
    ftl.trim_page(2, 1.0)
    before = ftl.stats.unmapped_reads
    ftl.read_page(2, 2.0)
    assert ftl.stats.unmapped_reads == before + 1


@pytest.mark.parametrize("name", ["dloop", "dftl", "fast", "bast", "last", "superblock", "pagemap"])
def test_trim_integrity_all_ftls(small_geometry, timing, name):
    ftl = create_ftl(name, small_geometry, timing)
    rng = random.Random(13)
    space = int(small_geometry.num_lpns * 0.6)
    for i in range(1500):
        lpn = rng.randrange(space)
        roll = rng.random()
        if roll < 0.55:
            ftl.write_page(lpn, float(i))
        elif roll < 0.75:
            ftl.trim_page(lpn, float(i))
        else:
            ftl.read_page(lpn, float(i))
    ftl.verify_integrity()


def test_trim_request_through_controller(small_geometry):
    ssd = SimulatedSSD(small_geometry, ftl="pagemap")
    ssd.run([
        IoRequest(0.0, 0, 4, IoOp.WRITE),
        IoRequest(1000.0, 0, 2, IoOp.TRIM),
    ])
    assert ssd.stats.pages_trimmed == 2
    assert ssd.ftl.current_ppn(0) == -1
    assert ssd.ftl.current_ppn(2) != -1
    ssd.verify()


def test_trim_relieves_gc_pressure(small_geometry):
    """Discarded space becomes reclaimable garbage: trimming the cold
    half of the footprint reduces GC work on subsequent writes."""
    import random as _random

    def churn(ssd, trim_first):
        rng = _random.Random(15)
        space = int(small_geometry.num_lpns * 0.6)
        ssd.precondition(0.65)
        requests = []
        t = 0.0
        if trim_first:
            requests.append(IoRequest(0.0, space, small_geometry.num_lpns - space - 1, IoOp.TRIM))
        for i in range(1500):
            t += 400.0
            requests.append(IoRequest(t, rng.randrange(space), 1, IoOp.WRITE))
        ssd.run(requests)
        ssd.verify()
        return ssd.ftl.gc_stats.moved_pages

    plain = SimulatedSSD(small_geometry, ftl="dloop", cmt_entries=64)
    trimmed = SimulatedSSD(small_geometry, ftl="dloop", cmt_entries=64)
    moved_plain = churn(plain, trim_first=False)
    moved_trimmed = churn(trimmed, trim_first=True)
    assert moved_trimmed <= moved_plain
