"""Multi-plane advanced commands (Section II.B)."""

import pytest

from repro.flash.commands import multi_plane_erase, multi_plane_program, multi_plane_read
from repro.flash.geometry import SSDGeometry
from repro.flash.timekeeper import FlashTimekeeper
from repro.flash.timing import TimingParams


@pytest.fixture
def paper_clock():
    return FlashTimekeeper(SSDGeometry(), TimingParams())


def die_planes(clock, die=0):
    return list(clock.geometry.planes_of_die(die))


def test_multi_plane_program_takes_one_program_plus_transfers(paper_clock):
    planes = die_planes(paper_clock)
    xfer = paper_clock.timing.page_transfer_us(paper_clock.geometry.page_size)
    end = multi_plane_program(paper_clock, planes, 0.0)
    # serial data-in transfers, then all programs overlap
    assert end == pytest.approx(len(planes) * xfer + 200.0)
    # much faster than sequential programs on one plane
    assert end < len(planes) * (xfer + 200.0)


def test_multi_plane_erase_takes_one_erase(paper_clock):
    planes = die_planes(paper_clock)
    end = multi_plane_erase(paper_clock, planes, 0.0)
    assert end == pytest.approx(0.2 + 2000.0)
    assert paper_clock.counters.erases == len(planes)


def test_multi_plane_read_senses_concurrently(paper_clock):
    planes = die_planes(paper_clock)
    xfer = paper_clock.timing.page_transfer_us(paper_clock.geometry.page_size)
    end = multi_plane_read(paper_clock, planes, 0.0)
    assert end == pytest.approx(25.0 + len(planes) * xfer)


def test_multi_plane_requires_one_die(paper_clock):
    geom = paper_clock.geometry
    planes = [0, 1]  # different channels -> different dies
    assert geom.plane_to_die(0) != geom.plane_to_die(1)
    with pytest.raises(ValueError):
        multi_plane_program(paper_clock, planes, 0.0)


def test_multi_plane_rejects_duplicates(paper_clock):
    with pytest.raises(ValueError):
        multi_plane_erase(paper_clock, [0, 0], 0.0)
    with pytest.raises(ValueError):
        multi_plane_read(paper_clock, [], 0.0)


def test_multi_plane_respects_busy_planes(paper_clock):
    planes = die_planes(paper_clock)
    paper_clock.program_page(planes[0], 0.0)  # make one plane busy
    busy_until = paper_clock.plane_free[planes[0]]
    end = multi_plane_erase(paper_clock, planes, 0.0)
    assert end >= busy_until + 2000.0


def test_multi_plane_counts_per_plane_ops(paper_clock):
    planes = die_planes(paper_clock)
    multi_plane_program(paper_clock, planes, 0.0)
    for plane in planes:
        assert paper_clock.counters.plane_ops[plane] == 1
