"""Event-schema lint fixture: deliberate DL201/DL202 violations.

This file is never imported; ``tests/test_schema.py`` lints it and
asserts the exact set of findings.  Line numbers matter — keep the
violations where they are or update the expectations.
"""
from repro.obs.tracebus import BUS


def emit_violations(plane, channel):
    ids = {"plane": plane, "channel": channel}
    BUS.emit("flash", "raed", 0.0, 1.0, ids, None)  # DL201: undeclared event
    BUS.emit("flash", "read", 0.0, 1.0, {"plane": plane}, None)  # DL201: missing key
    BUS.emit("flash", "read", 0.0, 1.0, {"plane": plane, "channel": channel, "voltage": 3}, None)  # DL201: extra key
    BUS.emit("flash", "read", 0.0, 1.0, ids, None, "i")  # DL201: wrong phase
    BUS.emit("telemetry", "boot", 0.0, 0.0, None, None)  # DL201: undeclared category


def consume_undeclared_name(event):
    return event.category == "flash" and event.name == "raed"  # DL202


def consume_undeclared_category(event):
    return event.category == "telemetry"  # DL202


def consume_undeclared_key(event):
    args = event.args or {}
    if event.category == "flash":
        return args.get("voltage")  # DL202
    return None


def clean_consumer(event):
    if event.category == "flash" and event.name == "read":
        return (event.args or {}).get("plane")
    return None
