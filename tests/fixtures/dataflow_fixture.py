"""Address-domain lint fixture: deliberate DL210 violations.

This file is never imported; ``tests/test_dataflow.py`` lints it and
asserts the exact set of findings.  Line numbers matter — keep the
violations where they are or update the expectations.
"""


def mixed_arithmetic(lpn, ppn):
    return lpn + ppn  # DL210: lpn + ppn


def mixed_comparison(lpn, ppn):
    return lpn < ppn  # DL210: lpn vs ppn


def mixed_assignment(victim_lpn):
    plane = victim_lpn  # DL210: lpn value into a plane name
    return plane


def mixed_time_units(start_us, budget_ms):
    return start_us + budget_ms  # DL210: us + ms


def swapped_keyword(lpn):
    return _service(channel=lpn)  # DL210: lpn into channel=


def swapped_positional(channel):
    return _service2(channel)  # DL210: channel into the plane slot


def annotated_flow(raw_address):
    addr = raw_address  # dl: domain(addr=ppn)
    lpn = addr  # DL210: annotation makes addr a ppn
    return lpn


def unknown_annotation(value):
    return value  # dl: domain(value=bananas)  (DL210: unknown domain)


def _service(channel):
    return channel


def _service2(plane):
    return plane


def clean_derivations(pbn, page_offset, pages_per_block, total_us):
    ppn = pbn * pages_per_block + page_offset  # derivation: clean
    total_ms = total_us / 1000.0  # unit conversion: clean
    next_ppn = ppn + 1  # untyped offset: clean
    return ppn, total_ms, next_ppn
