"""Determinism-linter fixture: one deliberate violation per rule code.

This file is never imported; ``tests/test_lint.py`` lints it and asserts
the exact set of findings (text and JSON).  Line numbers matter — keep
the violations where they are or update the expectations.
"""
import random
import time


def wall_clock_now():
    return time.time()  # DL101: wall clock


def unseeded_pick(items):
    return random.choice(items)  # DL102: module-level random


def iterate_planes(planes: set):
    for plane in planes:  # DL103: set iteration order
        print(plane)


def timestamps_equal(t_us: float, deadline_us: float) -> bool:
    return t_us == deadline_us  # DL104: float timestamp equality


def enqueue(request, queue=[]):  # DL105: mutable default argument
    queue.append(request)
    return queue


def suppressed_wall_clock():
    return time.time()  # dl: disable=DL101


def suppressed_everything():
    return random.random()  # dl: disable
