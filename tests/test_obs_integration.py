"""End-to-end observability: tracing and sampling a real DLOOP run.

Tracing must be a pure observer — with a Chrome-trace writer and the
stats sampler attached, a run produces bit-identical results to the
same run without them — while the trace captures flash command spans
on plane/channel rows, GC invocations, copy-back migrations and
queue-depth counters.
"""

import io
import json
import random

import pytest

from repro.controller.device import SimulatedSSD
from repro.flash.geometry import SSDGeometry
from repro.obs.chrome_trace import PID_CHANNELS, PID_PLANES, ChromeTraceWriter
from repro.obs.tracebus import BUS
from repro.sim.request import IoOp, IoRequest


@pytest.fixture(autouse=True)
def clean_global_bus():
    yield
    BUS.clear()


def update_heavy_workload(geometry, n=1500, seed=21):
    """Random updates over a tight footprint: forces GC and copy-back."""
    rng = random.Random(seed)
    space = int(geometry.num_lpns * 0.55)
    requests, t = [], 0.0
    for _ in range(n):
        t += rng.expovariate(1 / 400.0)
        lpn = rng.randrange(space)
        count = min(rng.choice((1, 1, 2)), geometry.num_lpns - lpn)
        op = IoOp.WRITE if rng.random() < 0.85 else IoOp.READ
        requests.append(IoRequest(t, lpn, count, op))
    return requests


def run_dloop(geometry, *, trace=False, stats_interval_us=None):
    """One preconditioned DLOOP run; returns (ssd, trace payload or None)."""
    ssd = SimulatedSSD(geometry, ftl="dloop", stats_interval_us=stats_interval_us)
    ssd.precondition(0.7)
    workload = update_heavy_workload(geometry)
    if trace:
        sink = io.StringIO()
        with ChromeTraceWriter(sink).recording():
            ssd.run(workload)
        payload = json.loads(sink.getvalue())
    else:
        payload = None
        ssd.run(workload)
    ssd.verify()
    return ssd, payload


def fingerprint(ssd):
    """Everything that must be bit-identical with observability on/off."""
    return {
        "response_us": list(ssd.stats.response_us),
        "counters": ssd.counters.as_dict(),
        "gc_passes": ssd.ftl.gc_stats.passes,
        "gc_moved": ssd.ftl.gc_stats.moved_pages,
        "gc_copyback": ssd.ftl.gc_stats.copyback_moves,
        "mapped": sorted(int(l) for l in ssd.ftl.mapped_lpns()),
    }


@pytest.fixture(scope="module")
def module_geometry():
    """Same shape as ``small_geometry``, module-scoped so the traced
    reference run below is simulated once."""
    return SSDGeometry(
        channels=2,
        packages_per_channel=1,
        chips_per_package=1,
        dies_per_chip=1,
        planes_per_die=2,
        blocks_per_plane=16,
        pages_per_block=8,
        page_size=256,
        extra_blocks_percent=25.0,
    )


@pytest.fixture(scope="module")
def traced_run(module_geometry):
    assert BUS.subscriber_count == 0  # nothing leaked into the reference run
    return run_dloop(module_geometry, trace=True, stats_interval_us=25_000.0)


def test_workload_actually_forces_gc(traced_run):
    """Guard: the spans asserted below exist because GC really ran."""
    ssd, _ = traced_run
    assert ssd.ftl.gc_stats.passes > 0
    assert ssd.ftl.gc_stats.copyback_moves > 0


def test_tracing_is_bit_identical_to_untraced_run(module_geometry, traced_run):
    traced_ssd, _ = traced_run
    plain_ssd, _ = run_dloop(module_geometry)
    assert fingerprint(plain_ssd) == fingerprint(traced_ssd)


def test_sampler_alone_is_bit_identical(small_geometry):
    """The sampler adds engine events but must not perturb results."""
    sampled_ssd, _ = run_dloop(small_geometry, stats_interval_us=25_000.0)
    plain_ssd, _ = run_dloop(small_geometry)
    assert fingerprint(plain_ssd) == fingerprint(sampled_ssd)


def test_trace_has_flash_spans_on_plane_and_channel_rows(small_geometry, traced_run):
    _, payload = traced_run
    events = payload["traceEvents"]
    flash = [e for e in events if e.get("cat") == "flash" and e["ph"] == "X"]
    assert len(flash) > 100
    plane_spans = [e for e in flash if e["pid"] == PID_PLANES]
    channel_spans = [e for e in flash if e["pid"] == PID_CHANNELS]
    assert {e["name"] for e in plane_spans} >= {"read", "program", "erase"}
    assert {e["name"] for e in channel_spans} >= {"xfer_in", "xfer_out"}
    # every flash span carries its resource ids and lands on the right row
    for e in plane_spans:
        assert e["tid"] == e["args"]["plane"]
        assert e["tid"] < small_geometry.num_planes
    for e in channel_spans:
        assert e["tid"] == e["args"]["channel"]
        assert e["tid"] < small_geometry.channels


def test_trace_has_gc_and_copyback_activity(traced_run):
    ssd, payload = traced_run
    events = payload["traceEvents"]
    gc = [e for e in events if e.get("cat") == "gc"]
    names = {e["name"] for e in gc}
    assert {"gc_invocation", "victim_selected", "gc_pass", "migrate"} <= names
    # copy-back shows up both as flash spans and as migrate mode
    copybacks = [e for e in events if e["name"] == "copy_back"]
    assert len(copybacks) > 0
    migrate_modes = {e["args"]["mode"] for e in gc if e["name"] == "migrate"}
    assert "copyback" in migrate_modes
    passes = [e for e in gc if e["name"] == "gc_pass"]
    assert len(passes) == ssd.ftl.gc_stats.passes
    # gc_pass spans ride the plane rows, so flash ops nest inside them
    assert all(e["pid"] == PID_PLANES for e in passes)


def test_trace_has_queue_depth_and_host_spans(traced_run):
    ssd, payload = traced_run
    events = payload["traceEvents"]
    depth = [e for e in events if e["ph"] == "C" and e["name"] == "queue_depth"]
    assert len(depth) >= 2 * ssd.stats.count  # arrival + completion each
    assert all("outstanding" in e["args"] for e in depth)
    host = [e for e in events if e.get("cat") == "host" and e["ph"] == "X"]
    assert len(host) == ssd.stats.count
    assert {e["name"] for e in host} == {"read", "write"}


def test_trace_timestamps_monotonic_and_json_clean(traced_run):
    _, payload = traced_run
    data = [e for e in payload["traceEvents"] if e["ph"] != "M"]
    ts = [e["ts"] for e in data]
    assert ts == sorted(ts)
    json.dumps(payload)  # round-trips: no stray numpy scalars anywhere


def test_sampler_series_populated(traced_run):
    ssd, _ = traced_run
    stats = ssd.run_stats
    assert stats.samples > 10
    for name, series in stats.series().items():
        assert len(series) == stats.samples, name
    # GC depleted and recycled free blocks: the series must show motion
    assert min(stats.min_free_blocks) < max(stats.min_free_blocks)
    assert stats.copyback_ratio[-1] > 0
    assert stats.gc_passes[-1] == ssd.ftl.gc_stats.passes
    assert max(stats.queue_depth) > 0
    summary = stats.summary()
    assert summary["samples"] == stats.samples
    assert summary["final_copyback_ratio"] == stats.copyback_ratio[-1]
    json.dumps(summary)


def test_sampler_registry_reflects_final_state(traced_run):
    ssd, _ = traced_run
    snap = ssd.metrics.snapshot()
    assert snap["queue_depth"]["count"] == ssd.run_stats.samples
    assert snap["free_blocks_min"] == ssd.run_stats.min_free_blocks[-1]
    assert snap["copyback_ratio"] == ssd.run_stats.copyback_ratio[-1]


def test_cmt_instants_appear_for_dftl(small_geometry):
    """Demand-paged FTLs publish CMT hit/miss instants."""
    ssd = SimulatedSSD(small_geometry, ftl="dftl")
    ssd.precondition(0.7)
    with BUS.capture() as events:
        ssd.run(update_heavy_workload(small_geometry, n=400))
    cmt = [e for e in events if e.category == "cmt"]
    assert {e.name for e in cmt} >= {"hit", "miss"}
