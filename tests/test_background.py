"""Idle-time background garbage collection."""

import random

import pytest

from repro.controller.background import BackgroundGc
from repro.controller.device import SimulatedSSD
from repro.sim.request import IoOp, IoRequest


def bursty_writes(geometry, bursts=12, burst_len=40, gap_us=150_000.0, seed=5, space=0.55):
    rng = random.Random(seed)
    limit = int(geometry.num_lpns * space)
    requests, t = [], 0.0
    for _ in range(bursts):
        for _ in range(burst_len):
            t += rng.expovariate(1 / 300.0)
            requests.append(IoRequest(t, rng.randrange(limit), 1, IoOp.WRITE))
        t += gap_us
    return requests


def test_idle_callback_fires_between_bursts(small_geometry):
    ssd = SimulatedSSD(small_geometry, ftl="pagemap")
    idles = []
    ssd.controller.on_idle.append(lambda: idles.append(ssd.engine.now))
    ssd.run(bursty_writes(small_geometry, bursts=5, burst_len=10))
    assert len(idles) >= 5  # at least once per burst gap


def test_background_passes_happen_when_idle(small_geometry):
    ssd = SimulatedSSD(small_geometry, ftl="dloop", background_gc=True, cmt_entries=64)
    ssd.precondition(0.65)
    ssd.run(bursty_writes(small_geometry))
    ssd.verify()
    assert ssd.background_gc.stats.ticks > 0
    assert ssd.ftl.gc_stats.background_passes == ssd.background_gc.stats.passes


def test_background_reduces_foreground_gc():
    """On a bursty, non-saturated device idle GC absorbs foreground work.

    Uses the 32-plane scaled geometry: the tiny 4-plane fixture is
    saturated at any GC-active fill, leaving no idle time to exploit.
    """
    from repro.experiments.config import scaled_geometry

    geometry = scaled_geometry(2, scale=1 / 32)
    rng = random.Random(5)
    space = int(geometry.num_lpns * 0.45)
    requests, t = [], 0.0
    for _ in range(30):
        for _ in range(60):
            t += rng.expovariate(1 / 250.0)
            lpn = rng.randrange(space)
            count = min(rng.choice((1, 2, 4)), geometry.num_lpns - lpn)
            requests.append(IoRequest(t, lpn, count, IoOp.WRITE))
        t += 250_000.0
    foreground = {}
    for bg in (False, True):
        ssd = SimulatedSSD(geometry, ftl="dloop", background_gc=bg)
        ssd.precondition(0.62)
        ssd.run(list(requests))
        ssd.verify()
        stats = ssd.ftl.gc_stats
        foreground[bg] = stats.passes - stats.background_passes
    assert foreground[True] <= foreground[False]


def test_background_stops_without_reclaimable_work(small_geometry):
    """A fresh (mostly empty) device never spins the idle loop."""
    ssd = SimulatedSSD(small_geometry, ftl="dloop", background_gc=True, cmt_entries=64)
    ssd.run([IoRequest(0.0, 1, 1, IoOp.WRITE)])
    # run() drained the event heap: no tick left re-arming forever
    assert ssd.engine.pending == 0
    assert ssd.background_gc.stats.passes == 0


def test_tick_cancelled_by_arrival(small_geometry):
    ssd = SimulatedSSD(small_geometry, ftl="dloop", background_gc=True,
                       cmt_entries=64)
    ssd.background_gc.idle_delay_us = 1000.0
    # first write completes -> idle -> tick armed at +1000; second write
    # arrives before that, so the tick must stand down
    ssd.submit(IoRequest(0.0, 1, 1, IoOp.WRITE))
    ssd.submit(IoRequest(500.0, 2, 1, IoOp.WRITE))
    ssd.run()
    assert ssd.background_gc.stats.cancelled_ticks >= 0  # no crash path


def test_outstanding_counts_arrived_requests(small_geometry):
    """Submitting a future request must not mark the device busy now."""
    ssd = SimulatedSSD(small_geometry, ftl="pagemap")
    ssd.submit(IoRequest(10_000.0, 0, 1, IoOp.WRITE))
    assert ssd.controller.outstanding == 0
    ssd.run()
    assert ssd.controller.outstanding == 0


def test_parameter_validation(small_geometry):
    ssd = SimulatedSSD(small_geometry, ftl="dloop", cmt_entries=64)
    with pytest.raises(ValueError):
        BackgroundGc(ssd.engine, ssd.ftl, ssd.controller, idle_delay_us=-1)
    with pytest.raises(ValueError):
        BackgroundGc(ssd.engine, ssd.ftl, ssd.controller, max_passes_per_idle=0)


def test_background_collect_no_work_when_pools_full(small_geometry, timing):
    from repro.ftl.pagemap import PageMapFtl

    ftl = PageMapFtl(small_geometry, timing)
    t, did_work = ftl.background_collect(0.0)
    assert not did_work
    assert t == 0.0
