"""GC policy helpers: victim selection and parity-minimising order."""

import pytest

from repro.flash.array import FlashArray
from repro.ftl.allocator import PlaneAllocator
from repro.ftl.gcontrol import parity_minimizing_order, select_victim


@pytest.fixture
def array(small_geometry):
    return FlashArray(small_geometry)


def fill_block(array, plane, owners):
    block = array.allocate_block(plane)
    base = array.codec.block_first_ppn(block)
    for i, owner in enumerate(owners):
        array.program(base + i, owner)
    return block


def test_no_victim_when_everything_valid(array):
    fill_block(array, 0, range(8))
    assert select_victim(array, 0) is None


def test_most_invalid_block_wins(array):
    b1 = fill_block(array, 0, range(8))
    b2 = fill_block(array, 0, range(10, 18))
    base1 = array.codec.block_first_ppn(b1)
    base2 = array.codec.block_first_ppn(b2)
    array.invalidate(base1)
    array.invalidate(base2)
    array.invalidate(base2 + 1)
    assert select_victim(array, 0) == b2


def test_excluded_blocks_skipped(array):
    b1 = fill_block(array, 0, range(8))
    array.invalidate(array.codec.block_first_ppn(b1))
    assert select_victim(array, 0, exclude={b1}) is None
    assert select_victim(array, 0) == b1


def test_free_blocks_never_victims(array):
    # all blocks still pooled: nothing to victimise
    assert select_victim(array, 0) is None


def test_max_valid_filters_full_blocks(array):
    b1 = fill_block(array, 0, range(8))
    base = array.codec.block_first_ppn(b1)
    array.invalidate(base)  # 7 valid, 1 invalid
    assert select_victim(array, 0, max_valid=3) is None
    assert select_victim(array, 0, max_valid=7) == b1


def test_victim_selection_is_per_plane(array):
    b0 = fill_block(array, 0, range(8))
    array.invalidate(array.codec.block_first_ppn(b0))
    assert select_victim(array, 1) is None
    assert select_victim(array, 0) == b0


def test_parity_order_alternating_sources_no_skips(array):
    """Mixed-parity sources can always be served skip-free."""
    victim = fill_block(array, 0, range(100, 108))
    alloc = PlaneAllocator(0, array)
    moved = []
    for ppn in parity_minimizing_order(list(array.valid_pages_in_block(victim)), array.codec, alloc):
        _, skipped = alloc.allocate_with_parity(array.owner_of(ppn), array.codec.page_parity(ppn))
        array.invalidate(ppn)
        moved.append(skipped)
    assert sum(moved) == 0


def test_parity_order_same_parity_sources_bounded_waste(array):
    """All-even sources: waste stays within ~1 skip per move (m/2 rule)."""
    block = array.allocate_block(0)
    base = array.codec.block_first_ppn(block)
    for i in range(8):
        array.program(base + i, 200 + i)
    for i in range(1, 8, 2):  # invalidate odd offsets -> 4 even-parity valids
        array.invalidate(base + i)
    alloc = PlaneAllocator(0, array)
    skips = 0
    for ppn in parity_minimizing_order(list(array.valid_pages_in_block(block)), array.codec, alloc):
        _, skipped = alloc.allocate_with_parity(array.owner_of(ppn), array.codec.page_parity(ppn))
        array.invalidate(ppn)
        skips += skipped
    assert skips <= 4  # m/2 of m=4 moves... plus the initial alignment


def test_parity_order_yields_every_page(array):
    victim = fill_block(array, 0, range(300, 308))
    base = array.codec.block_first_ppn(victim)
    array.invalidate(base + 2)
    valids = list(array.valid_pages_in_block(victim))
    alloc = PlaneAllocator(0, array)
    out = []
    for ppn in parity_minimizing_order(valids, array.codec, alloc):
        alloc.allocate_with_parity(array.owner_of(ppn), array.codec.page_parity(ppn))
        out.append(ppn)
    assert sorted(out) == sorted(valids)


def test_policy_validation(array):
    with pytest.raises(ValueError):
        select_victim(array, 0, policy="bogus")
    block = fill_block(array, 0, range(8))
    array.invalidate(array.codec.block_first_ppn(block))  # make it a candidate
    with pytest.raises(ValueError):
        select_victim(array, 0, policy="random")  # rng required


def test_cost_benefit_prefers_old_blocks(array):
    """Same invalid count: the older block wins under cost-benefit."""
    old = fill_block(array, 0, range(8))
    new = fill_block(array, 0, range(10, 18))
    array.invalidate(array.codec.block_first_ppn(old))
    array.invalidate(array.codec.block_first_ppn(new))
    assert select_victim(array, 0, policy="cost-benefit") == old
    # greedy ties break toward the first max; both have 1 invalid
    assert select_victim(array, 0, policy="greedy") in (old, new)


def test_fifo_picks_least_recently_written(array):
    first = fill_block(array, 0, range(8))
    second = fill_block(array, 0, range(10, 18))
    array.invalidate(array.codec.block_first_ppn(first) + 1)
    array.invalidate(array.codec.block_first_ppn(second) + 1)
    assert select_victim(array, 0, policy="fifo") == first


def test_random_policy_is_seeded(array):
    import random as _random

    b1 = fill_block(array, 0, range(8))
    b2 = fill_block(array, 0, range(10, 18))
    array.invalidate(array.codec.block_first_ppn(b1))
    array.invalidate(array.codec.block_first_ppn(b2))
    picks_a = [select_victim(array, 0, policy="random", rng=_random.Random(5)) for _ in range(5)]
    picks_b = [select_victim(array, 0, policy="random", rng=_random.Random(5)) for _ in range(5)]
    assert picks_a == picks_b
    assert set(picks_a) <= {b1, b2}


def test_cost_benefit_invalid_density_matters(array):
    """Mostly-invalid young block beats barely-invalid old block."""
    old = fill_block(array, 0, range(8))
    array.invalidate(array.codec.block_first_ppn(old))  # 1/8 invalid, old
    young = fill_block(array, 0, range(10, 18))
    base = array.codec.block_first_ppn(young)
    for i in range(7):  # 7/8 invalid, young
        array.invalidate(base + i)
    assert select_victim(array, 0, policy="cost-benefit") == young
