"""Utilisation report and simulated-clock helpers."""

import pytest

from repro.flash.counters import FlashCounters
from repro.metrics.utilization import utilization
from repro.sim.clock import format_us, from_ms, from_seconds, ms, seconds


def test_utilization_fractions():
    counters = FlashCounters(2, 2)
    counters.channel_busy_us[:] = [50.0, 100.0]
    counters.plane_busy_us[:] = [25.0, 75.0]
    report = utilization(counters, duration_us=200.0)
    assert report.channel_utilization.tolist() == [0.25, 0.5]
    assert report.peak_channel == 0.5
    assert report.mean_plane == pytest.approx(0.25)
    assert report.bottleneck == "channel"


def test_plane_bound_bottleneck():
    counters = FlashCounters(2, 2)
    counters.plane_busy_us[:] = [180.0, 190.0]
    counters.channel_busy_us[:] = [10.0, 10.0]
    report = utilization(counters, duration_us=200.0)
    assert report.bottleneck == "plane"
    assert report.row()["plane_util_peak_%"] == 95.0


def test_utilization_validation():
    with pytest.raises(ValueError):
        utilization(FlashCounters(1, 1), duration_us=0)


def test_copyback_load_is_plane_bound(small_geometry, timing):
    """A copy-back-heavy phase shows plane-bound utilisation with idle bus."""
    from repro.flash.timekeeper import FlashTimekeeper

    clock = FlashTimekeeper(small_geometry, timing)
    end = 0.0
    for _ in range(10):
        end = max(end, clock.copy_back(0, 0.0))
    report = utilization(clock.counters, duration_us=end)
    assert report.mean_channel == 0.0
    assert report.peak_plane > 0.9


def test_clock_conversions():
    assert ms(1500.0) == 1.5
    assert seconds(2_000_000.0) == 2.0
    assert from_ms(1.5) == 1500.0
    assert from_seconds(2.0) == 2_000_000.0


def test_format_us_ranges():
    assert format_us(500.0) == "500.0us"
    assert format_us(1500.0) == "1.50ms"
    assert format_us(2_500_000.0) == "2.50s"
    assert format_us(120_000_000.0) == "2.00min"
    with pytest.raises(ValueError):
        format_us(-1.0)
