"""Ideal page-map FTL and its striping-policy ablation knob."""

import random

import pytest

from repro.ftl.pagemap import PageMapFtl


def run_random(ftl, n=1500, seed=0, footprint=0.7):
    rng = random.Random(seed)
    space = int(ftl.geometry.num_lpns * footprint)
    for i in range(n):
        ftl.write_page(rng.randrange(space), float(i))


def test_lpn_striping_matches_dloop_policy(small_geometry, timing):
    ftl = PageMapFtl(small_geometry, timing, striping="lpn")
    for lpn in range(small_geometry.num_planes * 2):
        ftl.write_page(lpn, 0.0)
        assert ftl.codec.ppn_to_plane(ftl.current_ppn(lpn)) == lpn % ftl.num_planes


def test_roaming_concentrates_writes(small_geometry, timing):
    ftl = PageMapFtl(small_geometry, timing, striping="roaming")
    ppb = small_geometry.pages_per_block
    blocks = set()
    for lpn in range(ppb):
        ftl.write_page(lpn * 7 % small_geometry.num_lpns, 0.0)
        blocks.add(ftl.codec.ppn_to_block(ftl.current_ppn(lpn * 7 % small_geometry.num_lpns)))
    assert len(blocks) == 1


def test_random_striping_reproducible(small_geometry, timing):
    a = PageMapFtl(small_geometry, timing, striping="random", seed=7)
    b = PageMapFtl(small_geometry, timing, striping="random", seed=7)
    for lpn in range(40):
        a.write_page(lpn, 0.0)
        b.write_page(lpn, 0.0)
        assert a.current_ppn(lpn) == b.current_ppn(lpn)


def test_no_mapping_traffic(small_geometry, timing):
    """The whole map is in SRAM: a read is exactly one flash read."""
    ftl = PageMapFtl(small_geometry, timing)
    ftl.write_page(1, 0.0)
    before = ftl.clock.counters.reads
    ftl.read_page(1, 1e6)
    assert ftl.clock.counters.reads == before + 1


def test_gc_uses_copyback_for_lpn_striping(small_geometry, timing):
    ftl = PageMapFtl(small_geometry, timing, striping="lpn", use_copyback=True)
    run_random(ftl, n=2500, seed=1)
    assert ftl.gc_stats.moved_pages > 0
    assert ftl.gc_stats.controller_moves == 0 or ftl.gc_stats.emergency_passes > 0
    ftl.verify_integrity()


def test_gc_controller_moves_without_copyback(small_geometry, timing):
    ftl = PageMapFtl(small_geometry, timing, striping="lpn", use_copyback=False)
    run_random(ftl, n=2500, seed=2)
    assert ftl.gc_stats.copyback_moves == 0
    assert ftl.gc_stats.moved_pages > 0
    ftl.verify_integrity()


def test_roaming_gc_integrity(small_geometry, timing):
    ftl = PageMapFtl(small_geometry, timing, striping="roaming")
    run_random(ftl, n=2500, seed=3)
    assert ftl.gc_stats.moved_pages > 0
    ftl.verify_integrity()


def test_random_striping_gc_integrity(small_geometry, timing):
    ftl = PageMapFtl(small_geometry, timing, striping="random")
    run_random(ftl, n=2500, seed=4)
    ftl.verify_integrity()


def test_unknown_striping_rejected(small_geometry, timing):
    with pytest.raises(ValueError):
        PageMapFtl(small_geometry, timing, striping="bogus")
