"""Crash-consistency torture engine: arm, ledger, oracle, campaigns.

Covers the three layers separately (TortureArm event arithmetic, the
AckLedger's acknowledgement semantics, the durability oracle's
predicates — including sabotage tests proving it is not vacuous) and
then end-to-end: sampled campaigns over every registered FTL must find
zero violations, identical campaigns must produce identical reports,
and the fault-path crash points (GC relocation drain, erase-fail →
force-retire window) must recover cleanly.
"""

import json
import random

import numpy as np
import pytest

from repro.controller.device import SimulatedSSD
from repro.obs.tracebus import BUS
from repro.perf.fingerprint import ftl_fingerprint
from repro.sim.request import IoOp, IoRequest
from repro.torture import (
    AckLedger,
    CampaignConfig,
    TortureArm,
    TortureCampaign,
    TortureCrash,
    check_durability,
)
from repro.torture.arm import kind_of_event
from repro.torture.campaign import sample_points


def _write_workload(geometry, n, seed, *, trim_share=0.05):
    """Deterministic update-heavy traffic over a tight footprint."""
    rng = random.Random(seed)
    space = max(4, int(geometry.num_lpns * 0.55))
    requests, t = [], 0.0
    for _ in range(n):
        t += rng.expovariate(1 / 400.0)
        lpn = rng.randrange(space)
        count = min(rng.choice((1, 1, 2, 3)), geometry.num_lpns - lpn)
        op = IoOp.TRIM if rng.random() < trim_share else IoOp.WRITE
        requests.append(IoRequest(t, lpn, count, op))
    return requests


def _fresh(requests):
    return [
        IoRequest(r.arrival_us, r.start_lpn, r.page_count, r.op)
        for r in requests
    ]


# ---------------------------------------------------------------------------
# TortureArm
# ---------------------------------------------------------------------------


class TestArm:
    def _emit(self, category, name, n=1):
        for _ in range(n):
            BUS.emit(category, name, 0.0, 0.0, {}, None, "i")

    def test_counts_and_fires_at_exact_index(self):
        arm = TortureArm().attach(armed=("program", 2))
        try:
            self._emit("array", "program", 2)
            assert arm.fired is None
            assert arm.counts["program"] == 2
            with pytest.raises(TortureCrash) as exc:
                self._emit("array", "program")
            assert exc.value.kind == "program" and exc.value.index == 2
            assert arm.fired == ("program", 2)
            # disarmed after firing: further events only count
            self._emit("array", "program", 3)
            assert arm.counts["program"] == 6
        finally:
            arm.detach()

    def test_counting_only_and_kind_taxonomy(self):
        arm = TortureArm().attach()
        try:
            self._emit("array", "program")
            self._emit("array", "erase")
            self._emit("gc", "migrate")
            self._emit("fault", "relocate")
            self._emit("wb", "flush")
            self._emit("journal", "commit")
            self._emit("host", "io_begin")  # not a crash kind
        finally:
            arm.detach()
        assert arm.counts == {
            "program": 1, "erase": 1, "gc_step": 2,
            "wb_flush": 1, "journal_commit": 1,
        }

    def test_rearm_resets_counters(self):
        arm = TortureArm().attach(armed=("erase", 0))
        try:
            with pytest.raises(TortureCrash):
                self._emit("array", "erase")
            arm.rearm(("erase", 1))
            assert arm.counts["erase"] == 0
            self._emit("array", "erase")
            with pytest.raises(TortureCrash):
                self._emit("array", "erase")
        finally:
            arm.detach()

    def test_attach_twice_and_bad_kind_rejected(self):
        arm = TortureArm().attach()
        try:
            with pytest.raises(RuntimeError):
                arm.attach()
        finally:
            arm.detach()
        with pytest.raises(ValueError):
            TortureArm().attach(armed=("power_sag", 0))

    def test_detach_stops_counting(self):
        arm = TortureArm().attach()
        arm.detach()
        if BUS.enabled:
            self._emit("array", "program")
        assert arm.counts["program"] == 0


# ---------------------------------------------------------------------------
# AckLedger
# ---------------------------------------------------------------------------


class TestLedger:
    def _ssd(self, geometry):
        ssd = SimulatedSSD(geometry, ftl="dloop")
        ssd.ftl.array.enable_oob_generations()
        return ssd

    def test_write_ack_and_drop_inflight(self, small_geometry):
        ssd = self._ssd(small_geometry)
        ledger = AckLedger(ssd.ftl)
        req = IoRequest(0.0, 3, 2, IoOp.WRITE)
        ledger.issued(req)
        assert list(ssd.ftl.array.lpn_gen[3:5]) == [1, 1]
        assert ledger.acked_write_np[3] == -1  # not acknowledged yet
        ledger.completed(req)
        assert list(ledger.acked_write_np[3:5]) == [1, 1]
        # a second write issued but dropped at the crash stays unacked
        req2 = IoRequest(1.0, 3, 1, IoOp.WRITE)
        ledger.issued(req2)
        assert ssd.ftl.array.lpn_gen[3] == 2
        dropped = ledger.drop_inflight()
        assert dropped == [req2]
        assert ledger.acked_write_np[3] == 1

    def test_trim_snapshot_supersedes_writes(self, small_geometry):
        ssd = self._ssd(small_geometry)
        ledger = AckLedger(ssd.ftl)
        w = IoRequest(0.0, 7, 1, IoOp.WRITE)
        ledger.issued(w)
        ledger.completed(w)
        tr = IoRequest(1.0, 7, 1, IoOp.TRIM)
        ledger.issued(tr)
        # snapshot, no bump
        assert ssd.ftl.array.lpn_gen[7] == 1
        ledger.completed(tr)
        assert ledger.acked_trim_np[7] == 1
        assert ledger.acked_trim_np[7] >= ledger.acked_write_np[7]

    def test_error_completion_is_indeterminate(self, small_geometry):
        ssd = self._ssd(small_geometry)
        ledger = AckLedger(ssd.ftl)
        req = IoRequest(0.0, 1, 2, IoOp.WRITE)
        ledger.issued(req)
        req.error = "out of space"
        ledger.completed(req)
        assert ledger.acked_write_np[1] == -1
        assert {1, 2} <= ledger.indeterminate

    def test_requires_oob_generations(self, small_geometry):
        ssd = SimulatedSSD(small_geometry, ftl="dloop")
        with pytest.raises(RuntimeError):
            AckLedger(ssd.ftl)


# ---------------------------------------------------------------------------
# Durability oracle (with sabotage: the oracle must not be vacuous)
# ---------------------------------------------------------------------------


def _crashed_and_recovered(geometry, *, point=("program", 30), seed=42):
    """One manual crash replay: returns (ssd, ledger) post-recovery."""
    ssd = SimulatedSSD(geometry, ftl="dloop", sanitize=True)
    ssd.ftl.array.enable_oob_generations()
    ssd.precondition(0.7)
    ledger = AckLedger(ssd.ftl)
    ledger.baseline()
    ledger.attach_bus()
    ssd.controller.ledger = ledger
    ssd.controller.on_complete.append(ledger.completed)
    arm = TortureArm().attach(armed=point, ftl=ssd.ftl)
    try:
        with pytest.raises(TortureCrash):
            ssd.run(_write_workload(geometry, 400, seed))
    finally:
        arm.detach()
        ledger.detach()
        ssd.controller.ledger = None
        if ssd.sanitizer is not None:
            ssd.sanitizer.detach()
    ledger.drop_inflight()
    ssd.crash()
    return ssd, ledger


class TestOracle:
    def test_clean_recovery_has_no_violations(self, small_geometry):
        ssd, ledger = _crashed_and_recovered(small_geometry)
        verdict = check_durability(ssd.ftl, ledger)
        assert verdict.ok
        assert verdict.checked == ledger.num_lpns

    def test_unmapping_an_acked_lpn_is_stale_or_lost(self, small_geometry):
        ssd, ledger = _crashed_and_recovered(small_geometry)
        pt = np.asarray(ssd.ftl.page_table_np)
        victims = np.flatnonzero((ledger.acked_write_np >= 0) & (pt >= 0))
        victim = int(victims[0])
        ssd.ftl.page_table[victim] = -1
        verdict = check_durability(ssd.ftl, ledger)
        assert [(v.kind, v.lpn) for v in verdict.violations] == \
            [("stale_or_lost", victim)]

    def test_future_generation_is_fabrication(self, small_geometry):
        ssd, ledger = _crashed_and_recovered(small_geometry)
        pt = np.asarray(ssd.ftl.page_table_np)
        victim = int(np.flatnonzero(pt >= 0)[0])
        array = ssd.ftl.array
        array.page_gen[pt[victim]] = int(array.lpn_gen[victim]) + 5
        verdict = check_durability(ssd.ftl, ledger)
        assert verdict.violations[0].kind == "fabrication"
        assert verdict.violations[0].lpn == victim

    def test_resurrection_and_indeterminate_excuse(self, small_geometry):
        ssd, ledger = _crashed_and_recovered(small_geometry)
        pt = np.asarray(ssd.ftl.page_table_np)
        victim = int(np.flatnonzero(pt >= 0)[0])
        mapped_gen = int(ssd.ftl.array.page_gen[pt[victim]])
        # pretend a trim at (or above) the surviving content was acked
        ledger.acked_trim_np[victim] = max(
            mapped_gen, int(ledger.acked_write_np[victim])
        )
        verdict = check_durability(ssd.ftl, ledger)
        assert any(
            v.kind == "resurrected" and v.lpn == victim
            for v in verdict.violations
        )
        # an error-status (partially applied) trim excuses it
        ledger.indeterminate.add(victim)
        verdict = check_durability(ssd.ftl, ledger)
        assert not any(v.lpn == victim for v in verdict.violations)
        assert ("resurrected", victim, "indeterminate") in verdict.excused

    def test_buffered_at_crash_excuses_lost_write(self, small_geometry):
        ssd, ledger = _crashed_and_recovered(small_geometry)
        pt = np.asarray(ssd.ftl.page_table_np)
        victims = np.flatnonzero((ledger.acked_write_np >= 0) & (pt >= 0))
        victim = int(victims[0])
        ssd.ftl.page_table[victim] = -1
        verdict = check_durability(ssd.ftl, ledger, buffered_at_crash=[victim])
        assert verdict.ok
        assert ("stale_or_lost", victim, "buffered_at_crash") in verdict.excused


# ---------------------------------------------------------------------------
# Point sampling
# ---------------------------------------------------------------------------


class TestSampling:
    def test_deterministic_subset(self):
        points = [("program", i) for i in range(100)]
        a = sample_points(points, 10, seed=7)
        b = sample_points(points, 10, seed=7)
        assert a == b
        assert len(a) == 10
        assert len(set(a)) == 10
        assert set(a) <= set(points)
        assert sample_points(points, 10, seed=8) != a

    def test_within_budget_returns_all(self):
        points = [("erase", i) for i in range(5)]
        assert sample_points(points, 10, seed=1) == points


# ---------------------------------------------------------------------------
# Campaigns end to end
# ---------------------------------------------------------------------------


class TestCampaign:
    def test_all_ftls_zero_violations(self):
        campaign = TortureCampaign(CampaignConfig(
            num_requests=10, budget=4,
        ))
        report = campaign.run()
        assert len(report["cells"]) == 4
        assert report["total_violations"] == 0
        assert report["ranking"] == []
        for cell in report["cells"]:
            assert cell["unreached"] == 0
            assert cell["points_run"] == 4
            assert cell["sampled"]

    def test_identical_campaigns_identical_reports(self):
        config = CampaignConfig(ftls=("dloop",), num_requests=8, budget=4)
        canonical = [
            json.dumps(TortureCampaign(config).run(),
                       sort_keys=True, separators=(",", ":"))
            for _ in range(2)
        ]
        assert canonical[0] == canonical[1]

    def test_double_crash_on_fast(self):
        # FAST's recovery erases reclaimed journal/log blocks, so the
        # second cut really lands mid-recovery.
        campaign = TortureCampaign(CampaignConfig(
            ftls=("fast",), num_requests=10,
        ))
        cell = campaign.cells()[0]
        result = campaign.run_point(cell, ("program", 20), double=True)
        assert result.fired
        assert result.double
        assert not result.violations

    def test_write_buffer_cell(self):
        campaign = TortureCampaign(CampaignConfig(
            ftls=("dloop",), num_requests=10, budget=3, write_buffer_pages=4,
        ))
        cell = campaign.cells()[0]
        base = campaign._base_requests(cell)
        counts, _ = campaign.discover(cell, base)
        assert counts["wb_flush"] >= 1
        report = campaign.run_cell(cell)
        assert report["violations_total"] == 0

    def test_streaming_cell(self):
        campaign = TortureCampaign(CampaignConfig(
            ftls=("dloop",), num_requests=10, budget=3,
            stream=True, queue_depth=2,
        ))
        report = campaign.run_cell(campaign.cells()[0])
        assert report["violations_total"] == 0
        assert report["unreached"] == 0

    def test_fault_plan_cell(self):
        campaign = TortureCampaign(CampaignConfig(
            ftls=("dloop",), fault_plans=("moderate",),
            num_requests=10, budget=3,
        ))
        report = campaign.run_cell(campaign.cells()[0])
        assert report["violations_total"] == 0

    def test_repro_command_round_trips_flags(self):
        campaign = TortureCampaign(CampaignConfig(
            ftls=("dftl",), fault_plans=("moderate",), num_requests=12,
            double=True, write_buffer_pages=8, stream=True, queue_depth=4,
        ))
        cell = campaign.cells()[0]
        command = campaign.repro_command(cell, ("gc_step", 3), double=True)
        for token in ("--ftls dftl", "--faults moderate", "--double",
                      "--point gc_step:3", "--write-buffer 8", "--stream",
                      "--queue-depth 4", "--requests 12"):
            assert token in command


# ---------------------------------------------------------------------------
# Satellite: batch kernel vs armed crash points
# ---------------------------------------------------------------------------


class TestKernelInteraction:
    def test_attach_detaches_kernel(self, small_geometry):
        ssd = SimulatedSSD(small_geometry, ftl="dloop")
        assert ssd.ftl._kernel is not None
        arm = TortureArm().attach(armed=None, ftl=ssd.ftl)
        try:
            assert ssd.ftl._kernel is None
            assert ssd.ftl.tm.kernel is None
        finally:
            arm.detach()

    def test_kernel_armed_crash_equivalence(self, small_geometry):
        """A device built with batch kernels must count the same crash
        points — and crash into the same recovered state — as one built
        on the scalar path, because arming detaches the kernel."""
        workload = _write_workload(small_geometry, 300, seed=5)

        def build(batch):
            ssd = SimulatedSSD(
                small_geometry, ftl="dloop", batch_kernels=batch
            )
            ssd.precondition(0.7)
            return ssd

        counts, fingerprints = {}, {}
        for batch in (True, False):
            ssd = build(batch)
            arm = TortureArm().attach(armed=None, ftl=ssd.ftl)
            try:
                ssd.run(_fresh(workload))
            finally:
                arm.detach()
            counts[batch] = dict(arm.counts)
            fingerprints[batch] = ftl_fingerprint(ssd.ftl, ssd.engine.now)
        assert counts[True] == counts[False]
        assert fingerprints[True] == fingerprints[False]

        recovered = {}
        for batch in (True, False):
            ssd = build(batch)
            arm = TortureArm().attach(armed=("program", 50), ftl=ssd.ftl)
            try:
                with pytest.raises(TortureCrash):
                    ssd.run(_fresh(workload))
            finally:
                arm.detach()
            summary = ssd.crash()
            recovered[batch] = (
                summary["recovered_mappings"],
                ftl_fingerprint(ssd.ftl, ssd.engine.now),
            )
        assert recovered[True] == recovered[False]


# ---------------------------------------------------------------------------
# Satellite: fault-path crash points
# ---------------------------------------------------------------------------


def _fault_geometry():
    from repro.flash.geometry import SSDGeometry

    # Extra spare blocks so retirement never exhausts the free pool.
    return SSDGeometry(
        channels=2,
        packages_per_channel=1,
        chips_per_package=1,
        dies_per_chip=1,
        planes_per_die=2,
        blocks_per_plane=24,
        pages_per_block=8,
        page_size=256,
        extra_blocks_percent=60.0,
    )


def _fault_ssd(faults):
    geometry = _fault_geometry()
    ssd = SimulatedSSD(geometry, ftl="dloop", faults=dict(faults))
    ssd.ftl.array.enable_oob_generations()
    ssd.precondition(0.5)
    return ssd


def _discover_events(faults, workload):
    """Replay once (scalar path) and return the raw event list."""
    ssd = _fault_ssd(faults)
    arm = TortureArm().attach(armed=None, ftl=ssd.ftl)
    events = []
    try:
        BUS.subscribe(events.append)
        try:
            ssd.run(_fresh(workload))
        finally:
            BUS.unsubscribe(events.append)
    finally:
        arm.detach()
    return events


def _point_after(events, predicate):
    """First crash point at or after the first event matching ``predicate``."""
    counts = {kind: 0 for kind in
              ("program", "erase", "gc_step", "wb_flush", "journal_commit")}
    seen_marker = False
    for event in events:
        if not seen_marker and predicate(event):
            seen_marker = True
        kind = kind_of_event(event)
        if kind is None:
            continue
        if seen_marker:
            return (kind, counts[kind])
        counts[kind] += 1
    return None


def _replay_fault_point(faults, workload, point):
    ssd = _fault_ssd(faults)
    ledger = AckLedger(ssd.ftl)
    ledger.baseline()
    ledger.attach_bus()
    ssd.controller.ledger = ledger
    ssd.controller.on_complete.append(ledger.completed)
    arm = TortureArm().attach(armed=point, ftl=ssd.ftl)
    try:
        with pytest.raises(TortureCrash):
            ssd.run(_fresh(workload))
    finally:
        arm.detach()
        ledger.detach()
        ssd.controller.ledger = None
    ledger.drop_inflight()
    ssd.crash()
    verdict = check_durability(ssd.ftl, ledger)
    ssd.ftl.verify_integrity()
    return ssd, verdict


class TestFaultPathCrashPoints:
    PROGRAM_FAULTS = {
        "seed": 7,
        "program_fail_rate": 0.02,
        "program_fails_to_retire": 1,
    }
    ERASE_FAULTS = {"seed": 7, "erase_fail_rate": 0.05}

    def test_crash_during_gc_relocation_drain(self):
        """Power fails on a fault-path relocation (a live page being
        moved off a block pending retirement): recovery must keep every
        acknowledged write and leave a coherent device."""
        workload = _write_workload(
            _fault_geometry(), 600, seed=23, trim_share=0.0
        )
        events = _discover_events(self.PROGRAM_FAULTS, workload)
        relocations = [
            e for e in events
            if e.category == "fault" and e.name == "relocate"
        ]
        assert relocations, "fault plan produced no relocations"
        point = _point_after(
            events, lambda e: e.category == "fault" and e.name == "relocate"
        )
        assert point is not None and point[0] == "gc_step"
        ssd, verdict = _replay_fault_point(
            self.PROGRAM_FAULTS, workload, point
        )
        assert verdict.ok, [v.as_dict() for v in verdict.violations]
        # pending retirements were volatile; nothing may stay queued
        assert not ssd.ftl.faults.pending_retirements
        assert not ssd.ftl.array.force_retire

    def test_crash_between_erase_fail_and_force_retire(self):
        """Power fails after an erase failure marked the block for
        forced retirement but before the retirement happened: the mark
        lived in controller RAM, so recovery reverts the block to a
        normal one and the device stays fully usable."""
        workload = _write_workload(
            _fault_geometry(), 600, seed=24, trim_share=0.0
        )
        events = _discover_events(self.ERASE_FAULTS, workload)
        fails = [
            e for e in events
            if e.category == "fault" and e.name == "erase_fail"
        ]
        assert fails, "fault plan produced no erase failures"
        point = _point_after(
            events, lambda e: e.category == "fault" and e.name == "erase_fail"
        )
        assert point is not None
        ssd, verdict = _replay_fault_point(self.ERASE_FAULTS, workload, point)
        assert verdict.ok, [v.as_dict() for v in verdict.violations]
        assert not ssd.ftl.array.force_retire
        # the recovered device still serves writes over the whole space
        now = ssd.engine.now
        ssd.run([
            IoRequest(now + r.arrival_us, r.start_lpn, r.page_count, r.op)
            for r in _write_workload(ssd.geometry, 100, seed=25, trim_share=0.0)
        ])
        ssd.ftl.verify_integrity()


# ---------------------------------------------------------------------------
# Satellite: streaming crash support
# ---------------------------------------------------------------------------


class TestStreamingCrash:
    def test_run_with_crash_mid_stream(self, small_geometry):
        ssd = SimulatedSSD(small_geometry, ftl="dloop")
        ssd.precondition(0.6)
        requests = _write_workload(small_geometry, 300, seed=31, trim_share=0.0)
        crash_at = requests[len(requests) // 2].arrival_us
        tail = iter(_fresh(requests))
        summary = ssd.run_with_crash(
            tail, crash_at, stream=True, queue_depth=4
        )
        # admission state is volatile: fully reset by the crash
        assert ssd.controller._stream is None
        assert ssd.controller._stream_window == 0
        assert not ssd.controller._stream_deferred
        assert summary["recovered_mappings"] > 0
        # the un-admitted tail stays with the caller and replays fine
        remaining = list(tail)
        assert remaining
        before = ssd.stats.count
        ssd.run_stream(iter(remaining), streaming_stats=False)
        assert ssd.stats.count == before + len(remaining)
        ssd.ftl.verify_integrity()

    def test_runner_streams_through_crash(self, small_geometry):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_simulation
        from repro.traces.model import KB, SizeMix, WorkloadSpec
        from repro.traces.synthetic import generate

        spec = WorkloadSpec(
            name="stream-crash",
            num_requests=400,
            write_fraction=0.8,
            request_rate_per_s=10_000.0,
            size_mix=SizeMix((256, 512), (0.7, 0.3)),
            footprint_bytes=int(small_geometry.capacity_bytes * 0.5),
            zipf_theta=0.9,
            chunk_bytes=1 * KB,
            align_bytes=256,
            seed=33,
        )
        config = ExperimentConfig(
            geometry=small_geometry, ftl="dloop", precondition_fill=0.5
        )
        result = run_simulation(
            generate(spec), config, stream=True, queue_depth=4,
            crash_at_us=15_000.0,
        )
        crash = result.extras["crash"]
        assert crash["at_us"] == 15_000.0
        assert crash["recovered_mappings"] > 0
        assert result.num_requests > 0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_sweep_json_and_exit_code(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "torture.json"
        rc = main([
            "torture", "--ftls", "dloop", "--workloads", "build",
            "--requests", "8", "--budget", "3", "--json", str(out),
        ])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["total_violations"] == 0
        assert report["cells"][0]["cell"] == "torture|dloop|build|none"

    def test_point_repro_mode(self, capsys):
        from repro.cli import main

        rc = main([
            "torture", "--ftls", "dloop", "--workloads", "build",
            "--requests", "8", "--point", "program:10",
        ])
        assert rc == 0
        assert "torture|dloop|build|none @ program:10: ok" \
            in capsys.readouterr().out

    def test_bad_point_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["torture", "--point", "meteor:1"])
