"""Deterministic fault injection (repro.faults).

Covers the FaultPlan decision streams, the injector's program/erase/
read semantics, runtime block retirement, and the two reproducibility
contracts: zero-cost when off (bit-identical fingerprints) and
identical fault sites + final state across reruns of the same seed.
"""

import dataclasses
import random

import numpy as np
import pytest

from repro.controller.device import SimulatedSSD
from repro.faults import READ_LOST, FaultConfig, FaultInjector, FaultPlan
from repro.ftl.registry import create_ftl
from repro.obs.tracebus import BUS
from repro.perf.fingerprint import ftl_fingerprint
from repro.sim.request import IoOp, IoRequest


FAULT_FTLS = ("dloop", "dftl", "fast")


def _plan(**kwargs) -> FaultPlan:
    return FaultPlan(FaultConfig(**kwargs))


# ---- FaultPlan -------------------------------------------------------------


def test_plan_streams_are_deterministic():
    config = FaultConfig(seed=42, program_fail_rate=0.3, erase_fail_rate=0.2,
                         read_error_rate=0.2, read_uncorrectable_rate=0.05)
    a, b = FaultPlan(config), FaultPlan(config)
    assert [a.next_program_fails() for _ in range(500)] == \
           [b.next_program_fails() for _ in range(500)]
    assert [a.next_erase_fails() for _ in range(500)] == \
           [b.next_erase_fails() for _ in range(500)]
    assert [a.next_read_outcome() for _ in range(500)] == \
           [b.next_read_outcome() for _ in range(500)]


def test_plan_seed_changes_decisions():
    mk = lambda s: FaultPlan(dataclasses.replace(
        FaultConfig(program_fail_rate=0.5), seed=s))
    a, b = mk(1), mk(2)
    assert [a.next_program_fails() for _ in range(200)] != \
           [b.next_program_fails() for _ in range(200)]


def test_plan_rates_zero_and_one():
    assert not _plan().enabled
    assert _plan(program_fail_rate=0.001).enabled
    always = _plan(program_fail_rate=1.0)
    assert all(always.next_program_fails() for _ in range(50))
    never = _plan(program_fail_rate=0.0)
    assert not any(never.next_program_fails() for _ in range(50))


def test_plan_empirical_rate_tracks_config():
    plan = _plan(seed=7, program_fail_rate=0.1)
    hits = sum(plan.next_program_fails() for _ in range(20_000))
    assert 0.08 < hits / 20_000 < 0.12


def test_read_outcomes_banded():
    plan = _plan(seed=3, read_error_rate=0.3, read_uncorrectable_rate=0.1,
                 max_read_retries=3)
    outcomes = [plan.next_read_outcome() for _ in range(10_000)]
    losses = sum(o == READ_LOST for o in outcomes)
    retries = [o for o in outcomes if o > 0]
    assert 0.07 < losses / 10_000 < 0.13
    assert 0.25 < len(retries) / 10_000 < 0.35
    assert set(retries) <= {1, 2, 3}


def test_config_validation():
    with pytest.raises(ValueError):
        FaultConfig(program_fail_rate=1.5)
    with pytest.raises(ValueError):
        FaultConfig(read_error_rate=-0.1)
    with pytest.raises(ValueError):
        FaultConfig(max_read_retries=0)
    with pytest.raises(ValueError):
        FaultConfig(program_fails_to_retire=0)


def test_attach_rejected_without_seams(small_geometry, timing):
    ftl = create_ftl("pagemap", small_geometry, timing)
    injector = FaultInjector(ftl.array, ftl.clock, _plan(program_fail_rate=0.1))
    with pytest.raises(ValueError):
        ftl.attach_faults(injector)


# ---- whole-device runs -----------------------------------------------------


def _workload(num_lpns: int, n: int = 1200, seed: int = 9):
    rng = random.Random(seed)
    space = int(num_lpns * 0.5)
    t = 0.0
    requests = []
    for _ in range(n):
        t += rng.expovariate(1 / 400.0)
        op = IoOp.WRITE if rng.random() < 0.7 else IoOp.READ
        requests.append(IoRequest(t, rng.randrange(space), 1, op))
    return requests


def _run(small_geometry, ftl_name, faults, *, n=1200, sanitize=True):
    ssd = SimulatedSSD(small_geometry, ftl=ftl_name, sanitize=sanitize,
                       faults=faults)
    ssd.precondition(0.5)
    ssd.run(_workload(small_geometry.num_lpns, n=n))
    if ssd.sanitizer is not None:
        # Detach so a second sanitized SSD in the same test doesn't see
        # this device's events on the shared bus.
        ssd.sanitizer.finalize()
    return ssd


@pytest.mark.parametrize("name", FAULT_FTLS)
def test_zero_rate_plan_is_bit_identical_to_no_faults(small_geometry, name):
    plain = _run(small_geometry, name, None, sanitize=False)
    zero = _run(small_geometry, name, FaultConfig(), sanitize=False)
    fp_a = ftl_fingerprint(plain.ftl, plain.engine.now)
    fp_b = ftl_fingerprint(zero.ftl, zero.engine.now)
    assert fp_a == fp_b


@pytest.mark.parametrize("name", FAULT_FTLS)
def test_fault_runs_reproduce_exactly(small_geometry, name):
    config = FaultConfig.moderate(seed=5)
    a = _run(small_geometry, name, config)
    b = _run(small_geometry, name, config)
    assert a.faults.stats.sites == b.faults.stats.sites
    assert a.faults.stats.as_dict() == b.faults.stats.as_dict()
    assert ftl_fingerprint(a.ftl, a.engine.now) == \
           ftl_fingerprint(b.ftl, b.engine.now)
    assert a.faults.stats.sites  # the preset actually fired


@pytest.mark.parametrize("name", FAULT_FTLS)
def test_program_failures_survive_and_stay_consistent(small_geometry, name):
    config = FaultConfig(seed=11, program_fail_rate=0.05,
                         program_fails_to_retire=2)
    ssd = _run(small_geometry, name, config)
    assert ssd.faults.stats.program_failures > 0
    assert ssd.ftl.clock.counters.skipped_pages > 0
    ssd.verify()


def test_program_fail_retry_stays_on_plane_dloop(small_geometry):
    """DLOOP's copy-back eligibility: the replacement page of a failed
    program lands on the same plane (asserted over TraceBus events)."""
    config = FaultConfig(seed=3, program_fail_rate=0.1,
                         program_fails_to_retire=3)
    ssd = SimulatedSSD(small_geometry, ftl="dloop", faults=config)
    ssd.precondition(0.5)
    codec = ssd.ftl.codec
    with BUS.capture() as events:
        ssd.run(_workload(small_geometry.num_lpns, n=800))
    fails = [i for i, e in enumerate(events)
             if e.category == "fault" and e.name == "program_fail"]
    assert fails, "fault rate high enough that programs must have failed"
    checked = 0
    for i in fails:
        plane = events[i].args["plane"]
        for e in events[i + 1:]:
            if e.category == "fault" and e.name == "program_fail":
                break  # retry failed again; its own entry checks the rest
            if e.category == "array" and e.name == "program":
                assert codec.ppn_to_plane(e.args["ppn"]) == plane
                checked += 1
                break
    assert checked > 0


def test_retirement_relocates_and_retires(small_geometry):
    """A block crossing the failure threshold is drained between
    requests: valid pages relocated, block leaves circulation."""
    config = FaultConfig(seed=1, program_fail_rate=0.02,
                         program_fails_to_retire=1)
    with BUS.capture() as events:
        ssd = _run(small_geometry, "dloop", config, n=500)
    stats = ssd.faults.stats
    assert stats.blocks_retired > 0
    assert ssd.ftl.array.bad_block_count() >= stats.blocks_retired
    assert not ssd.faults.pending_retirements
    retired = [e.args["block"] for e in events
               if e.category == "fault" and e.name == "block_retired"]
    for e in events:
        if e.category == "fault" and e.name == "relocate":
            assert e.args["block"] in retired
    ssd.verify()


def test_erase_failure_retires_via_release(small_geometry):
    config = FaultConfig(seed=2, erase_fail_rate=1.0)
    ssd = _run(small_geometry, "dloop", config)
    stats = ssd.faults.stats
    assert stats.erase_failures > 0
    # every failed erase retired its block through release_block
    assert ssd.ftl.array.bad_block_count() >= stats.erase_failures
    assert not ssd.ftl.array.force_retire
    ssd.verify()


def test_read_retries_charge_latency(small_geometry):
    clean = _run(small_geometry, "dloop", None, sanitize=False)
    noisy = _run(small_geometry, "dloop",
                 FaultConfig(seed=4, read_error_rate=0.5), sanitize=False)
    assert noisy.faults.stats.correctable_reads > 0
    assert noisy.counters.read_retries == noisy.faults.stats.read_retries
    # retries cost extra sense operations
    assert noisy.counters.reads > clean.counters.reads


def test_uncorrectable_read_loses_page(small_geometry):
    config = FaultConfig(seed=6, read_uncorrectable_rate=0.2)
    ssd = _run(small_geometry, "dloop", config)
    stats = ssd.faults.stats
    assert stats.uncorrectable_reads > 0
    assert ssd.ftl.stats.lost_pages == stats.uncorrectable_reads
    assert ssd.stats.lost_pages == stats.uncorrectable_reads
    ssd.verify()  # the lost pages are unmapped, not dangling


def test_per_request_retry_accounting(small_geometry):
    ssd = _run(small_geometry, "dloop",
               FaultConfig(seed=8, read_error_rate=0.3, program_fail_rate=0.02))
    assert ssd.stats.retried_requests > 0
    assert ssd.stats.total_retries >= ssd.stats.retried_requests


def test_fault_stats_as_dict_is_serialisable(small_geometry):
    import json

    ssd = _run(small_geometry, "dloop", FaultConfig.moderate(seed=0), n=400)
    json.dumps(ssd.faults.stats.as_dict())


# ---- BadBlockManager runtime retirement ------------------------------------


def test_badblock_manager_retires_allocated_block(small_geometry, timing):
    from repro.flash.badblocks import BadBlockManager

    ftl = create_ftl("dloop", small_geometry, timing)
    manager = BadBlockManager(ftl.array, factory_bad_rate=0.0)
    for lpn in range(small_geometry.num_lpns // 2):
        ftl.write_page(lpn, 0.0)
    # pick an allocated block that still holds valid pages
    mask = (~ftl.array.block_free_mask) & (ftl.array.block_valid_np > 0)
    block = int(np.flatnonzero(mask)[0])
    valid_before = int(ftl.array.block_valid[block])
    manager.retire(ftl, block, now=0.0)
    assert ftl.array.is_block_bad(block)
    assert manager.stats.runtime_retired == 1
    assert int(ftl.array.block_valid[block]) == 0
    assert valid_before > 0
    ftl.verify_integrity()
    # idempotent, and free blocks go straight to mark_bad
    manager.retire(ftl, block)
    assert manager.stats.runtime_retired == 1


def test_life_fractions_cheap_forms_match(small_geometry):
    from repro.flash.array import FlashArray
    from repro.flash.badblocks import BadBlockManager

    array = FlashArray(small_geometry)
    manager = BadBlockManager(array, rated_cycles=100, factory_bad_rate=0.05,
                              seed=3)
    assert manager.remaining_life_fraction() == pytest.approx(1.0)
    block = int(np.flatnonzero(~array.bad_block_mask)[0])
    plane = array.codec.block_to_plane(block)
    for _ in range(10):
        b = array.allocate_block(plane)
        array.erase(b)
        array.release_block(b)
    assert manager.remaining_life_fraction() < 1.0
    # reference (mask-based) computation agrees with the fused form
    alive = ~array.bad_block_mask
    used = array.block_erase_count_np[alive] / manager.endurance[alive]
    expected = float(np.clip(1.0 - used, 0.0, 1.0).mean())
    assert manager.remaining_life_fraction() == pytest.approx(expected)
    assert manager.retired_fraction() == pytest.approx(
        array.bad_block_count() / small_geometry.num_physical_blocks)
