"""FTL registry and bulk-fill equivalence."""

import numpy as np
import pytest

from repro.flash.timing import TimingParams
from repro.ftl.registry import available_ftls, create_ftl


def test_available_ftls_lists_all():
    names = available_ftls()
    for expected in ("dloop", "dloop-nocb", "dloop-hot", "dftl", "fast", "pagemap"):
        assert expected in names


def test_create_by_name(small_geometry):
    for name in available_ftls():
        ftl = create_ftl(name, small_geometry)
        assert ftl.geometry is small_geometry


def test_unknown_name(small_geometry):
    with pytest.raises(ValueError, match="unknown FTL"):
        create_ftl("nope", small_geometry)


def test_dloop_nocb_flag(small_geometry):
    ftl = create_ftl("dloop-nocb", small_geometry)
    assert ftl.use_copyback is False


def test_fast_ignores_cmt_kwargs(small_geometry):
    ftl = create_ftl("fast", small_geometry, cmt_entries=64)
    assert ftl.name == "fast"


@pytest.mark.parametrize("name", ["dloop", "dftl", "fast", "pagemap"])
def test_bulk_fill_equivalent_to_write_loop(small_geometry, timing, name):
    """Vectorised preconditioning produces the same logical state as the
    per-page write path (placement may differ; the mapping must not)."""
    count = int(small_geometry.num_lpns * 0.6)
    fast_path = create_ftl(name, small_geometry, timing)
    fast_path.bulk_fill(count)
    slow_path = create_ftl(name, small_geometry, timing)
    for lpn in range(count):
        slow_path.write_page(lpn, 0.0)
    assert np.array_equal(fast_path.mapped_lpns(), slow_path.mapped_lpns())
    assert len(fast_path.mapped_lpns()) == count
    fast_path.verify_integrity()
    slow_path.verify_integrity()


@pytest.mark.parametrize("name", ["dloop", "pagemap"])
def test_bulk_fill_matches_write_loop_placement(small_geometry, timing, name):
    """For plane-striped FTLs even the plane placement matches."""
    count = int(small_geometry.num_lpns * 0.6)
    fast_path = create_ftl(name, small_geometry, timing)
    fast_path.bulk_fill(count)
    planes = fast_path.geometry.num_planes
    for lpn in range(count):
        ppn = fast_path.current_ppn(lpn)
        assert fast_path.codec.ppn_to_plane(ppn) == lpn % planes


def test_bulk_fill_zero_count(small_geometry, timing):
    ftl = create_ftl("dloop", small_geometry, timing)
    ftl.bulk_fill(0)
    assert len(ftl.mapped_lpns()) == 0
