"""SimulatedSSD facade: construction, preconditioning, verification."""

import pytest

from repro.controller.device import SimulatedSSD
from repro.ftl.base import Ftl
from repro.sim.request import IoOp, IoRequest


def test_default_construction_is_dloop():
    ssd = SimulatedSSD()
    assert ssd.ftl.name == "dloop"


def test_ftl_selection_by_name(small_geometry):
    for name in ("dloop", "dftl", "fast", "pagemap", "dloop-hot", "dloop-nocb"):
        ssd = SimulatedSSD(small_geometry, ftl=name)
        assert isinstance(ssd.ftl, Ftl)


def test_unknown_ftl_rejected(small_geometry):
    with pytest.raises(ValueError):
        SimulatedSSD(small_geometry, ftl="nope")


def test_precondition_fills_logical_space(small_geometry):
    ssd = SimulatedSSD(small_geometry, ftl="pagemap")
    ssd.precondition(0.5)
    mapped = ssd.ftl.mapped_lpns()
    assert len(mapped) == int(small_geometry.num_lpns * 0.5)
    ssd.verify()


def test_precondition_resets_measurements(small_geometry):
    ssd = SimulatedSSD(small_geometry, ftl="pagemap")
    ssd.precondition(0.5)
    assert ssd.counters.programs == 0
    assert ssd.stats.count == 0
    assert max(ssd.ftl.clock.plane_free) == 0.0
    # but the flash state persists
    assert ssd.ftl.array.utilization() > 0


def test_precondition_bad_fraction(small_geometry):
    ssd = SimulatedSSD(small_geometry, ftl="pagemap")
    with pytest.raises(ValueError):
        ssd.precondition(0.0)
    with pytest.raises(ValueError):
        ssd.precondition(1.5)


def test_run_returns_final_time(small_geometry):
    ssd = SimulatedSSD(small_geometry, ftl="pagemap")
    end = ssd.run([IoRequest(100.0, 0, 1, IoOp.WRITE)])
    assert end >= 100.0


def test_run_accepts_iterable(small_geometry):
    ssd = SimulatedSSD(small_geometry, ftl="pagemap")
    reqs = (IoRequest(float(i), i, 1, IoOp.WRITE) for i in range(5))
    ssd.run(reqs)
    assert ssd.stats.count == 5


def test_passing_ftl_instance(small_geometry, timing):
    from repro.ftl.pagemap import PageMapFtl

    ftl = PageMapFtl(small_geometry, timing)
    ssd = SimulatedSSD(small_geometry, timing, ftl=ftl)
    assert ssd.ftl is ftl


def test_verify_detects_corruption(small_geometry):
    ssd = SimulatedSSD(small_geometry, ftl="pagemap")
    ssd.run([IoRequest(0.0, 0, 1, IoOp.WRITE)])
    ssd.verify()
    ssd.ftl.page_table[0] = ssd.ftl.page_table[0] + 1  # corrupt the map
    with pytest.raises(AssertionError):
        ssd.verify()


def test_all_device_features_compose(small_geometry):
    """Write buffer + background GC + telemetry in one device."""
    import random

    from repro.sim.request import IoOp, IoRequest

    ssd = SimulatedSSD(
        small_geometry,
        ftl="dloop",
        cmt_entries=64,
        write_buffer_pages=16,
        background_gc=True,
        telemetry_interval_us=5_000.0,
    )
    ssd.precondition(0.5)
    rng = random.Random(3)
    requests, t = [], 0.0
    for _ in range(400):
        t += rng.expovariate(1 / 800.0)
        requests.append(
            IoRequest(t, rng.randrange(int(small_geometry.num_lpns * 0.6)), 1,
                      IoOp.WRITE if rng.random() < 0.7 else IoOp.READ)
        )
    ssd.run(requests)
    ssd.flush()
    ssd.verify()
    assert ssd.stats.count == 400
    assert ssd.write_buffer.stats.write_hits + ssd.write_buffer.stats.write_misses > 0
    assert len(ssd.telemetry.times_us) > 0
    assert ssd.background_gc.stats.ticks >= 0


def test_power_cycle_recovers_mapping(small_geometry):
    import numpy as np

    ssd = SimulatedSSD(small_geometry, ftl="dloop", cmt_entries=64)
    ssd.run([IoRequest(float(i * 100), i % 50, 1, IoOp.WRITE) for i in range(200)])
    table_before = ssd.ftl.page_table_np.copy()
    recovered = ssd.power_cycle()
    assert recovered == int(np.count_nonzero(table_before != -1))
    assert np.array_equal(ssd.ftl.page_table_np, table_before)
    ssd.verify()


def test_power_cycle_loses_unflushed_buffer(small_geometry):
    ssd = SimulatedSSD(small_geometry, ftl="pagemap", write_buffer_pages=64)
    ssd.run([IoRequest(0.0, 5, 1, IoOp.WRITE)])  # sits in DRAM only
    assert not ssd.ftl.is_mapped(5)
    ssd.power_cycle()
    assert not ssd.ftl.is_mapped(5)  # the write is gone, consistently
    ssd.verify()


@pytest.mark.parametrize("stride", [2, 3, 4, 7, 16, 512])
def test_precondition_strided_covers_distinct_lpns(small_geometry, stride):
    """Strided preconditioning must honor fill_fraction for any stride.

    Regression: the old ``(i * stride) % num_lpns`` walk cycles after
    ``num_lpns / gcd(stride, num_lpns)`` steps — on this power-of-two
    space stride=2 used to rewrite half the LPNs twice and cover only
    50% of the requested fill.
    """
    ssd = SimulatedSSD(small_geometry, ftl="pagemap")
    ssd.precondition(0.5, stride=stride)
    count = int(small_geometry.num_lpns * 0.5)
    assert len(ssd.ftl.mapped_lpns()) == count
    ssd.verify()


def test_reset_measurements_clears_all_component_stats(small_geometry):
    """The measurement boundary must zero *every* stats accumulator:
    controller, FTL host counters, write buffer, and fault accounting —
    while physical state survives."""
    import random

    from repro.faults import FaultConfig

    ssd = SimulatedSSD(
        small_geometry,
        ftl="dloop",
        write_buffer_pages=16,
        faults=FaultConfig.moderate(seed=3),
    )
    rng = random.Random(9)
    requests, t = [], 0.0
    for _ in range(300):
        t += rng.expovariate(1 / 500.0)
        requests.append(
            IoRequest(t, rng.randrange(int(small_geometry.num_lpns * 0.6)), 1,
                      IoOp.WRITE if rng.random() < 0.8 else IoOp.READ)
        )
    ssd.run(requests)
    ssd.flush()
    assert ssd.ftl.stats.host_writes > 0
    assert ssd.write_buffer.stats.write_hits + ssd.write_buffer.stats.write_misses > 0
    fault_activity = ssd.faults.stats.program_failures + ssd.faults.stats.read_retries
    utilization_before = ssd.ftl.array.utilization()

    ssd.reset_measurements()

    assert ssd.stats.count == 0
    assert ssd.controller.peak_outstanding == 0
    assert ssd.ftl.stats.host_writes == 0 and ssd.ftl.stats.host_reads == 0
    assert ssd.ftl.gc_stats.invocations == 0
    assert ssd.write_buffer.stats.write_hits == 0
    assert ssd.write_buffer.stats.write_misses == 0
    assert ssd.write_buffer.stats.evictions == 0
    assert ssd.faults.stats.program_failures == 0
    assert ssd.faults.stats.read_retries == 0
    assert ssd.faults.stats.sites == []
    # physical state is untouched
    assert ssd.ftl.array.utilization() == utilization_before
    assert fault_activity >= 0  # (ran; counters may legitimately be zero)
    ssd.verify()


def test_reset_measurements_preserves_streaming_stats_type(small_geometry):
    from repro.metrics.streaming import StreamingRequestStats

    ssd = SimulatedSSD(small_geometry, ftl="pagemap")
    ssd.controller.stats = StreamingRequestStats()
    ssd.reset_measurements()
    assert isinstance(ssd.stats, StreamingRequestStats)
    assert ssd.stats.count == 0
